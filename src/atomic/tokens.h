// Hardware-concurrent ERC20 token implementations (std::thread substrate).
//
// Three implementations embodying the paper's synchronization spectrum
// (experiment E9):
//   * MutexToken   — one global mutex: every operation totally ordered,
//                    the "all transactions through consensus" baseline the
//                    paper argues is wasteful;
//   * ShardedToken — one mutex per account: operations on different
//                    accounts proceed in parallel — the per-account
//                    synchronization granularity the paper derives
//                    (coordination only among σ(a));
//   * AtomicRaceToken — a lock-free, wait-free specialization of T_q for
//                    q ∈ S_k restricted to the operations Algorithm 1
//                    uses: the race account's (balance, winner) pair is
//                    packed into ONE std::atomic<uint64_t> so the decision
//                    step is a single CAS (see race_token rationale in
//                    DESIGN.md).
//
// All implementations expose the same interface subset; tests validate
// ShardedToken against the sequential specification via linearizability
// checking, and benches compare throughput/latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "objects/erc20.h"

namespace tokensync {

/// Globally-locked ERC20 token — the total-order baseline.  Updates
/// mutate in place (same data layout as ShardedToken), so benchmark gaps
/// against it measure synchronization granularity, not copying overhead.
class MutexToken {
 public:
  /// `validation_spin` simulates per-operation validation work (signature
  /// check / VM execution) inside the critical section, in ~1ns units; a
  /// real ledger never applies an unvalidated transaction, so the work
  /// necessarily serializes under whichever lock protects the state.
  explicit MutexToken(const Erc20State& initial,
                      unsigned validation_spin = 0);

  bool transfer(ProcessId caller, AccountId dst, Amount v);
  bool transfer_from(ProcessId caller, AccountId src, AccountId dst,
                     Amount v);
  bool approve(ProcessId caller, ProcessId spender, Amount v);
  Amount balance_of(AccountId a) const;
  Amount allowance(AccountId a, ProcessId p) const;
  Amount total_supply() const;

  /// Snapshot of the full state (quiescent use only).
  Erc20State snapshot() const;

 private:
  mutable std::mutex mu_;
  unsigned validation_spin_ = 0;
  std::vector<Amount> balances_;
  std::vector<std::vector<Amount>> allowances_;
};

/// Busy work standing in for transaction validation; ~1ns per unit.
inline void simulated_validation(unsigned units) {
  for (unsigned i = 0; i < units; ++i) {
    asm volatile("" ::: "memory");
  }
}

/// Per-account-locked ERC20 token — per-account synchronization.
///
/// Lock order: account locks are always acquired in increasing account-id
/// order, so cross-account transfers cannot deadlock.  An account's
/// balance AND its allowance row share the account's lock (transferFrom
/// must debit both atomically — they belong to the same σ-group anyway).
class ShardedToken {
 public:
  /// See MutexToken for `validation_spin`.
  explicit ShardedToken(const Erc20State& initial,
                        unsigned validation_spin = 0);

  bool transfer(ProcessId caller, AccountId dst, Amount v);
  bool transfer_from(ProcessId caller, AccountId src, AccountId dst,
                     Amount v);
  bool approve(ProcessId caller, ProcessId spender, Amount v);
  Amount balance_of(AccountId a) const;
  Amount allowance(AccountId a, ProcessId p) const;
  /// Locks accounts one at a time: a *weak* (non-atomic) total; exact
  /// under quiescence.  Conservation tests use quiescent points.
  Amount total_supply_weak() const;

  Erc20State snapshot() const;  // quiescent use only
  std::size_t num_accounts() const noexcept { return balances_.size(); }

 private:
  struct Account {
    mutable std::mutex mu;
  };
  unsigned validation_spin_ = 0;
  std::vector<Amount> balances_;
  std::vector<std::vector<Amount>> allowances_;
  std::unique_ptr<Account[]> accounts_;
};

/// Lock-free race object: the T_q fragment Algorithm 1 needs, for
/// q ∈ S_k with race account a_1.
///
/// Packed word layout (64 bits):
///   bits 0..47  — remaining balance of the race account;
///   bits 48..55 — winner participant index + 1 (0 = no winner yet);
///   bits 56..63 — unused.
/// transfer/transferFrom are single CAS attempts: they succeed iff no
/// winner is recorded and the balance covers the amount; the winner index
/// and the debit are published atomically, which is exactly what the
/// agreement argument of Theorem 2 needs (see E3: a non-atomic
/// balance-then-allowance publication admits disagreement windows).
class AtomicRaceToken {
 public:
  /// Race with initial balance B and per-participant transfer amounts
  /// (amounts[0] = B for the owner; amounts[i] = A_i).  Requires
  /// B < 2^48 and at most 255 participants, and q ∈ S_k (U holds).
  AtomicRaceToken(Amount balance, std::vector<Amount> amounts);

  /// Participant i's race step (the paper's transfer / transferFrom with
  /// its full balance/allowance).  Returns true iff i won.
  bool try_spend(std::size_t i);

  /// allowance(a_1, p_j) per the race semantics: 0 iff j won, else A_j.
  Amount allowance_of(std::size_t j) const;

  /// The winner, if any (participant index).
  std::optional<std::size_t> winner() const;

  Amount balance() const;

 private:
  static constexpr std::uint64_t kBalanceMask = (1ULL << 48) - 1;

  std::atomic<std::uint64_t> word_;
  std::vector<Amount> amounts_;
};

/// Hardware Algorithm 1: wait-free consensus among k std::threads from one
/// AtomicRaceToken plus k atomic registers.  propose() mirrors the paper's
/// pseudocode line by line.
class HwAlgo1 {
 public:
  /// k participants; amounts per make_sync_state (allowances B/2+1).
  explicit HwAlgo1(std::size_t k, Amount balance = 1000);

  /// Executed concurrently from k threads; returns the decided value.
  Amount propose(std::size_t i, Amount value);

  std::size_t k() const noexcept { return k_; }

 private:
  std::size_t k_;
  AtomicRaceToken race_;
  std::vector<std::atomic<std::uint64_t>> regs_;  // 0 = unwritten, v+1
};

}  // namespace tokensync
