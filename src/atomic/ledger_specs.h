// ConcurrentTokenSpec instantiations: the in-place, footprint-annotated
// forms of the ERC20, ERC721 and ERC777 sequential specifications.
//
// Each spec mirrors its objects/ sequential specification response-for-
// response (the linearizability tests check exactly this), adds the
// account-footprint function σ (which accounts an operation touches, the
// unit of sharded locking in ConcurrentLedger), and lays the state out as
// flat arrays updated in place.
//
// Footprints:
//   ERC20   — argument-only: transfer {caller, dst}, transferFrom
//             {src, dst} (an account's allowance row shares the account's
//             shard: transferFrom must debit balance and allowance
//             atomically — they belong to the same σ-group anyway),
//             approve {caller}, totalSupply = all shards.
//   ERC777  — argument-only: send/operatorSend {src, dst}, operator
//             management {caller}.
//   ERC721  — *state-dependent*: a token's data (owner, per-token
//             approval) is guarded by its CURRENT owner's account shard,
//             so approve/ownerOf/getApproved footprints read owner_of
//             through an atomic and ConcurrentLedger's optimistic
//             footprint loop revalidates after locking.  transferFrom's
//             footprint is {src, dst} from the arguments: if the token
//             is not owned by src it fails like the sequential spec, and
//             if it is, src's shard is exactly the guarding lock; a
//             successful transfer hands guardianship to dst's shard at
//             the atomic owner store.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "atomic/ledger.h"
#include "common/ids.h"
#include "objects/erc20.h"
#include "objects/erc721.h"
#include "objects/erc777.h"

namespace tokensync {

// ---------------------------------------------------------------------------
// ERC20.
// ---------------------------------------------------------------------------

/// Flat in-place ERC20 state; balances[a] and allowances[a] are guarded by
/// account a's shard lock.
struct Erc20LedgerState {
  std::vector<Amount> balances;
  std::vector<std::vector<Amount>> allowances;  // [account][process]
};

struct Erc20LedgerSpec {
  using SeqSpec = Erc20Spec;
  using SeqState = Erc20State;
  using Op = Erc20Op;
  using State = Erc20LedgerState;

  static State from_seq(const SeqState& q);
  static SeqState to_seq(const State& s);
  static std::size_t num_accounts(const State& s) {
    return s.balances.size();
  }
  static void footprint(const State& s, ProcessId caller, const Op& op,
                        Footprint& fp);
  static Response apply_inplace(State& s, ProcessId caller, const Op& op);
  static Amount account_value(const State& s, AccountId a) {
    return s.balances[a];
  }
};

static_assert(ConcurrentTokenSpec<Erc20LedgerSpec>);

// ---------------------------------------------------------------------------
// ERC777.
// ---------------------------------------------------------------------------

/// Flat in-place ERC777 state; balances[a] and operators[a] are guarded by
/// account a's shard lock.
struct Erc777LedgerState {
  std::vector<Amount> balances;
  std::vector<std::vector<std::uint8_t>> operators;  // [holder][process]
};

struct Erc777LedgerSpec {
  using SeqSpec = Erc777Spec;
  using SeqState = Erc777State;
  using Op = Erc777Op;
  using State = Erc777LedgerState;

  static State from_seq(const SeqState& q);
  static SeqState to_seq(const State& s);
  static std::size_t num_accounts(const State& s) {
    return s.balances.size();
  }
  static void footprint(const State& s, ProcessId caller, const Op& op,
                        Footprint& fp);
  static Response apply_inplace(State& s, ProcessId caller, const Op& op);
  static Amount account_value(const State& s, AccountId a) {
    return s.balances[a];
  }
};

static_assert(ConcurrentTokenSpec<Erc777LedgerSpec>);

// ---------------------------------------------------------------------------
// ERC721.
// ---------------------------------------------------------------------------

/// Flat in-place ERC721 state.  owner_of is atomic so that state-dependent
/// footprints can read it without holding any lock (see file comment);
/// approved[t] is guarded by t's current owner's shard, operators[a] by
/// account a's shard.
struct Erc721LedgerState {
  std::size_t accounts = 0;
  std::vector<std::atomic<AccountId>> owner_of;       // token -> owner
  std::vector<ProcessId> approved;                    // token -> spender
  std::vector<std::vector<std::uint8_t>> operators;   // [holder][process]
};

struct Erc721LedgerSpec {
  using SeqSpec = Erc721Spec;
  using SeqState = Erc721State;
  using Op = Erc721Op;
  using State = Erc721LedgerState;

  static State from_seq(const SeqState& q);
  static SeqState to_seq(const State& s);
  static std::size_t num_accounts(const State& s) { return s.accounts; }
  static void footprint(const State& s, ProcessId caller, const Op& op,
                        Footprint& fp);
  static Response apply_inplace(State& s, ProcessId caller, const Op& op);
  /// Tokens currently owned by `a` — conservation counts tokens, not
  /// fungible units.
  static Amount account_value(const State& s, AccountId a);
};

static_assert(ConcurrentTokenSpec<Erc721LedgerSpec>);

/// The ready-to-use sharded ledgers of the token family.
using Erc20Ledger = ConcurrentLedger<Erc20LedgerSpec>;
using Erc721Ledger = ConcurrentLedger<Erc721LedgerSpec>;
using Erc777Ledger = ConcurrentLedger<Erc777LedgerSpec>;

}  // namespace tokensync
