#include "atomic/ledger_specs.h"

#include "common/checked.h"
#include "common/error.h"

namespace tokensync {

// ---------------------------------------------------------------------------
// ERC20.
// ---------------------------------------------------------------------------

Erc20LedgerState Erc20LedgerSpec::from_seq(const Erc20State& q) {
  const std::size_t n = q.num_accounts();
  Erc20LedgerState s;
  s.balances.resize(n);
  s.allowances.assign(n, std::vector<Amount>(n, 0));
  for (AccountId a = 0; a < n; ++a) {
    s.balances[a] = q.balance(a);
    for (ProcessId p = 0; p < n; ++p) s.allowances[a][p] = q.allowance(a, p);
  }
  return s;
}

Erc20State Erc20LedgerSpec::to_seq(const Erc20LedgerState& s) {
  return Erc20State(s.balances, s.allowances);
}

void Erc20LedgerSpec::footprint(const Erc20LedgerState& /*s*/,
                                ProcessId caller, const Erc20Op& op,
                                Footprint& fp) {
  switch (op.kind) {
    case Erc20Op::Kind::kTransfer:
      fp.add(account_of(caller));
      fp.add(op.dst);
      return;
    case Erc20Op::Kind::kTransferFrom:
      fp.add(op.src);
      fp.add(op.dst);
      return;
    case Erc20Op::Kind::kApprove:
      fp.add(account_of(caller));
      return;
    case Erc20Op::Kind::kBalanceOf:
    case Erc20Op::Kind::kAllowance:
      fp.add(op.src);
      return;
    case Erc20Op::Kind::kTotalSupply:
      fp.set_all();
      return;
  }
  TS_ASSERT(false);
}

Response Erc20LedgerSpec::apply_inplace(Erc20LedgerState& s, ProcessId caller,
                                        const Erc20Op& op) {
  const std::size_t n = s.balances.size();
  TS_EXPECTS(caller < n);

  switch (op.kind) {
    case Erc20Op::Kind::kTransfer: {
      TS_EXPECTS(op.dst < n);
      const AccountId src = account_of(caller);
      if (s.balances[src] < op.value ||
          add_would_overflow(s.balances[op.dst], op.value)) {
        return Response::boolean(false);
      }
      s.balances[src] -= op.value;
      s.balances[op.dst] += op.value;  // src == dst nets to a no-op
      return Response::boolean(true);
    }

    case Erc20Op::Kind::kTransferFrom: {
      TS_EXPECTS(op.src < n && op.dst < n);
      if (s.allowances[op.src][caller] < op.value ||
          s.balances[op.src] < op.value ||
          add_would_overflow(s.balances[op.dst], op.value)) {
        return Response::boolean(false);
      }
      s.allowances[op.src][caller] -= op.value;
      s.balances[op.src] -= op.value;
      s.balances[op.dst] += op.value;
      return Response::boolean(true);
    }

    case Erc20Op::Kind::kApprove:
      TS_EXPECTS(op.spender < n);
      s.allowances[account_of(caller)][op.spender] = op.value;
      return Response::boolean(true);

    case Erc20Op::Kind::kBalanceOf:
      TS_EXPECTS(op.src < n);
      return Response::number(s.balances[op.src]);

    case Erc20Op::Kind::kAllowance:
      TS_EXPECTS(op.src < n && op.spender < n);
      return Response::number(s.allowances[op.src][op.spender]);

    case Erc20Op::Kind::kTotalSupply: {
      Amount sum = 0;
      for (Amount b : s.balances) sum = checked_add(sum, b);
      return Response::number(sum);
    }
  }
  TS_ASSERT(false);
}

// ---------------------------------------------------------------------------
// ERC777.
// ---------------------------------------------------------------------------

Erc777LedgerState Erc777LedgerSpec::from_seq(const Erc777State& q) {
  const std::size_t n = q.num_accounts();
  Erc777LedgerState s;
  s.balances.resize(n);
  s.operators.assign(n, std::vector<std::uint8_t>(n, 0));
  for (AccountId a = 0; a < n; ++a) {
    s.balances[a] = q.balance(a);
    for (ProcessId p = 0; p < n; ++p) {
      s.operators[a][p] = q.is_operator(a, p) ? 1 : 0;
    }
  }
  return s;
}

Erc777State Erc777LedgerSpec::to_seq(const Erc777LedgerState& s) {
  const std::size_t n = s.balances.size();
  Erc777State q(n, /*deployer=*/0, /*total_supply=*/0);
  for (AccountId a = 0; a < n; ++a) {
    q.set_balance(a, s.balances[a]);
    for (ProcessId p = 0; p < n; ++p) {
      q.set_operator(a, p, s.operators[a][p] != 0);
    }
  }
  return q;
}

void Erc777LedgerSpec::footprint(const Erc777LedgerState& /*s*/,
                                 ProcessId caller, const Erc777Op& op,
                                 Footprint& fp) {
  switch (op.kind) {
    case Erc777Op::Kind::kSend:
      fp.add(account_of(caller));
      fp.add(op.dst);
      return;
    case Erc777Op::Kind::kOperatorSend:
      fp.add(op.src);
      fp.add(op.dst);
      return;
    case Erc777Op::Kind::kAuthorizeOperator:
    case Erc777Op::Kind::kRevokeOperator:
      fp.add(account_of(caller));
      return;
    case Erc777Op::Kind::kBalanceOf:
    case Erc777Op::Kind::kIsOperatorFor:
      fp.add(op.src);
      return;
  }
  TS_ASSERT(false);
}

Response Erc777LedgerSpec::apply_inplace(Erc777LedgerState& s,
                                         ProcessId caller,
                                         const Erc777Op& op) {
  const std::size_t n = s.balances.size();
  TS_EXPECTS(caller < n);

  switch (op.kind) {
    case Erc777Op::Kind::kSend: {
      TS_EXPECTS(op.dst < n);
      const AccountId src = account_of(caller);
      if (s.balances[src] < op.value ||
          add_would_overflow(s.balances[op.dst], op.value)) {
        return Response::boolean(false);
      }
      s.balances[src] -= op.value;
      s.balances[op.dst] += op.value;
      return Response::boolean(true);
    }

    case Erc777Op::Kind::kOperatorSend: {
      TS_EXPECTS(op.src < n && op.dst < n);
      const bool authorized =
          caller == owner_of(op.src) || s.operators[op.src][caller] != 0;
      if (!authorized || s.balances[op.src] < op.value ||
          add_would_overflow(s.balances[op.dst], op.value)) {
        return Response::boolean(false);
      }
      s.balances[op.src] -= op.value;
      s.balances[op.dst] += op.value;
      return Response::boolean(true);
    }

    case Erc777Op::Kind::kAuthorizeOperator:
      TS_EXPECTS(op.op_process < n);
      s.operators[account_of(caller)][op.op_process] = 1;
      return Response::boolean(true);

    case Erc777Op::Kind::kRevokeOperator:
      TS_EXPECTS(op.op_process < n);
      s.operators[account_of(caller)][op.op_process] = 0;
      return Response::boolean(true);

    case Erc777Op::Kind::kBalanceOf:
      TS_EXPECTS(op.src < n);
      return Response::number(s.balances[op.src]);

    case Erc777Op::Kind::kIsOperatorFor:
      TS_EXPECTS(op.src < n && op.op_process < n);
      return Response::boolean(s.operators[op.src][op.op_process] != 0);
  }
  TS_ASSERT(false);
}

// ---------------------------------------------------------------------------
// ERC721.
// ---------------------------------------------------------------------------

Erc721LedgerState Erc721LedgerSpec::from_seq(const Erc721State& q) {
  const std::size_t n = q.num_accounts();
  const std::size_t t = q.num_tokens();
  Erc721LedgerState s;
  s.accounts = n;
  s.owner_of = std::vector<std::atomic<AccountId>>(t);
  s.approved.resize(t);
  s.operators.assign(n, std::vector<std::uint8_t>(n, 0));
  for (TokenId tok = 0; tok < t; ++tok) {
    s.owner_of[tok].store(q.owner_of(tok), std::memory_order_relaxed);
    s.approved[tok] = q.approved(tok);
  }
  for (AccountId a = 0; a < n; ++a) {
    for (ProcessId p = 0; p < n; ++p) {
      s.operators[a][p] = q.is_operator(a, p) ? 1 : 0;
    }
  }
  return s;
}

Erc721State Erc721LedgerSpec::to_seq(const Erc721LedgerState& s) {
  std::vector<AccountId> owners(s.owner_of.size());
  for (std::size_t t = 0; t < owners.size(); ++t) {
    owners[t] = s.owner_of[t].load(std::memory_order_relaxed);
  }
  Erc721State q(s.accounts, std::move(owners));
  for (TokenId t = 0; t < s.approved.size(); ++t) {
    q.set_approved(t, s.approved[t]);
  }
  for (AccountId a = 0; a < s.accounts; ++a) {
    for (ProcessId p = 0; p < s.accounts; ++p) {
      q.set_operator(a, p, s.operators[a][p] != 0);
    }
  }
  return q;
}

void Erc721LedgerSpec::footprint(const Erc721LedgerState& s, ProcessId caller,
                                 const Erc721Op& op, Footprint& fp) {
  switch (op.kind) {
    case Erc721Op::Kind::kTransferFrom:
      fp.add(op.src);
      fp.add(op.dst);
      return;
    // Token-keyed operations are guarded by the token's current owner's
    // shard; the lock-free owner read makes the footprint state-dependent
    // and ConcurrentLedger revalidates it after locking.
    case Erc721Op::Kind::kApprove:
    case Erc721Op::Kind::kOwnerOf:
    case Erc721Op::Kind::kGetApproved:
      TS_EXPECTS(op.token < s.owner_of.size());
      fp.add(s.owner_of[op.token].load(std::memory_order_acquire));
      return;
    case Erc721Op::Kind::kSetApprovalForAll:
      fp.add(account_of(caller));
      return;
    case Erc721Op::Kind::kIsApprovedForAll:
      fp.add(op.src);
      return;
  }
  TS_ASSERT(false);
}

Response Erc721LedgerSpec::apply_inplace(Erc721LedgerState& s,
                                         ProcessId caller,
                                         const Erc721Op& op) {
  const std::size_t n = s.accounts;
  TS_EXPECTS(caller < n);

  switch (op.kind) {
    case Erc721Op::Kind::kTransferFrom: {
      TS_EXPECTS(op.src < n && op.dst < n &&
                 op.token < s.owner_of.size());
      // We hold {src, dst}; if src really owns the token, src's shard is
      // the guarding lock.  If not, fail exactly like the sequential spec
      // (the owner read is atomic, so this is race-free either way).
      const bool owns =
          s.owner_of[op.token].load(std::memory_order_acquire) == op.src;
      const bool authorized = caller == owner_of(op.src) ||
                              (owns && s.approved[op.token] == caller) ||
                              s.operators[op.src][caller] != 0;
      if (!owns || !authorized) return Response::boolean(false);
      s.approved[op.token] = kNoProcess;  // EIP-721: approval cleared
      // The release store hands guardianship of the token to dst's shard.
      s.owner_of[op.token].store(op.dst, std::memory_order_release);
      return Response::boolean(true);
    }

    case Erc721Op::Kind::kApprove: {
      TS_EXPECTS(op.spender < n && op.token < s.owner_of.size());
      // ConcurrentLedger guarantees the holder's shard is locked (it
      // revalidated the footprint after locking).
      const AccountId holder =
          s.owner_of[op.token].load(std::memory_order_acquire);
      if (caller != owner_of(holder) &&
          s.operators[holder][caller] == 0) {
        return Response::boolean(false);
      }
      s.approved[op.token] = op.spender;
      return Response::boolean(true);
    }

    case Erc721Op::Kind::kSetApprovalForAll:
      TS_EXPECTS(op.spender < n);
      s.operators[account_of(caller)][op.spender] = op.flag ? 1 : 0;
      return Response::boolean(true);

    case Erc721Op::Kind::kOwnerOf:
      TS_EXPECTS(op.token < s.owner_of.size());
      return Response::number(
          s.owner_of[op.token].load(std::memory_order_acquire));

    case Erc721Op::Kind::kGetApproved:
      TS_EXPECTS(op.token < s.owner_of.size());
      return Response::number(s.approved[op.token]);

    case Erc721Op::Kind::kIsApprovedForAll:
      TS_EXPECTS(op.src < n && op.spender < n);
      return Response::boolean(s.operators[op.src][op.spender] != 0);
  }
  TS_ASSERT(false);
}

Amount Erc721LedgerSpec::account_value(const Erc721LedgerState& s,
                                       AccountId a) {
  Amount owned = 0;
  for (const auto& owner : s.owner_of) {
    if (owner.load(std::memory_order_relaxed) == a) ++owned;
  }
  return owned;
}

}  // namespace tokensync
