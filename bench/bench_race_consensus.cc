// E9b — hardware Algorithm 1: wait-free consensus latency from the
// lock-free race token, vs. a mutex-and-flag consensus baseline, vs. the
// same sticky race run through the generic sharded ConcurrentLedger
// (ERC721 instantiation: transferFrom of one NFT, winner via ownerOf),
// across participant counts k.
//
// Expected shape: the CAS-based race costs a handful of atomic operations
// plus a k-length scan, growing mildly and predictably with k; the mutex
// baseline serializes all participants through one lock; the ledger race
// pays the per-account lock of the shared NFT's σ-group — the irreducible
// coordination the paper locates at the race account.
#include <benchmark/benchmark.h>

#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "atomic/tokens.h"
#include "objects/erc721.h"

namespace {

using namespace tokensync;

/// Baseline: first-proposal-wins consensus guarded by a mutex.
class MutexConsensus {
 public:
  Amount propose(Amount v) {
    const std::scoped_lock lock(mu_);
    if (!decided_) decided_ = v;
    return *decided_;
  }

 private:
  std::mutex mu_;
  std::optional<Amount> decided_;
};

/// The ERC721 race (core/erc721_consensus.h) on the hardware ledger:
/// k threads race transferFrom(a_0, dest_i, token 0); ownerOf names the
/// winner, whose proposal everyone adopts.
class LedgerRaceConsensus {
 public:
  explicit LedgerRaceConsensus(std::size_t k)
      : ledger_(make_initial(k)), proposals_(k) {
    for (auto& p : proposals_) p.store(0);
  }

  Amount propose(std::size_t i, Amount value) {
    proposals_[i] = value + 1;  // 0 encodes unwritten
    ledger_.apply(static_cast<ProcessId>(i),
                  Erc721Op::transfer_from(
                      0, static_cast<AccountId>(i + 1), 0));
    const Response owner =
        ledger_.apply(static_cast<ProcessId>(i), Erc721Op::owner_of(0));
    const std::size_t winner = static_cast<std::size_t>(owner.value - 1);
    return proposals_[winner].load() - 1;
  }

 private:
  static Erc721State make_initial(std::size_t k) {
    Erc721State q(k + 1, {0});
    for (ProcessId p = 1; p < k; ++p) q.set_operator(0, p, true);
    return q;
  }

  Erc721Ledger ledger_;
  std::vector<std::atomic<Amount>> proposals_;
};

void RaceConsensus(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    HwAlgo1 consensus(k);
    std::vector<std::thread> ts;
    std::vector<Amount> decided(k);
    for (std::size_t i = 0; i < k; ++i) {
      ts.emplace_back(
          [&, i] { decided[i] = consensus.propose(i, 1000 + i); });
    }
    for (auto& t : ts) t.join();
    for (std::size_t i = 1; i < k; ++i) {
      if (decided[i] != decided[0]) {
        state.SkipWithError("agreement violated!");
      }
    }
    benchmark::DoNotOptimize(decided);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(RaceConsensus)->RangeMultiplier(2)->Range(1, 16)->UseRealTime();

void MutexConsensusBaseline(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    MutexConsensus consensus;
    std::vector<std::thread> ts;
    std::vector<Amount> decided(k);
    for (std::size_t i = 0; i < k; ++i) {
      ts.emplace_back(
          [&, i] { decided[i] = consensus.propose(1000 + i); });
    }
    for (auto& t : ts) t.join();
    benchmark::DoNotOptimize(decided);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(MutexConsensusBaseline)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->UseRealTime();

void LedgerRace(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    LedgerRaceConsensus consensus(k);
    std::vector<std::thread> ts;
    std::vector<Amount> decided(k);
    for (std::size_t i = 0; i < k; ++i) {
      ts.emplace_back(
          [&, i] { decided[i] = consensus.propose(i, 1000 + i); });
    }
    for (auto& t : ts) t.join();
    for (std::size_t i = 1; i < k; ++i) {
      if (decided[i] != decided[0]) {
        state.SkipWithError("ledger race agreement violated!");
      }
    }
    benchmark::DoNotOptimize(decided);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(LedgerRace)->RangeMultiplier(2)->Range(1, 16)->UseRealTime();

/// Single-threaded decision-step cost: one CAS on the packed word.
void RaceDecisionStep(benchmark::State& state) {
  for (auto _ : state) {
    AtomicRaceToken race(1000, {1000, 501, 501});
    benchmark::DoNotOptimize(race.try_spend(1));
  }
}
BENCHMARK(RaceDecisionStep);

}  // namespace

BENCHMARK_MAIN();
