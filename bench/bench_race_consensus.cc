// E9b — hardware Algorithm 1: wait-free consensus latency from the
// lock-free race token, vs. a mutex-and-flag consensus baseline, across
// participant counts k.
//
// Expected shape: the CAS-based race costs a handful of atomic operations
// plus a k-length scan, growing mildly and predictably with k; the mutex
// baseline serializes all participants through one lock.
#include <benchmark/benchmark.h>

#include <mutex>
#include <optional>
#include <thread>

#include "atomic/tokens.h"

namespace {

using namespace tokensync;

/// Baseline: first-proposal-wins consensus guarded by a mutex.
class MutexConsensus {
 public:
  Amount propose(Amount v) {
    const std::scoped_lock lock(mu_);
    if (!decided_) decided_ = v;
    return *decided_;
  }

 private:
  std::mutex mu_;
  std::optional<Amount> decided_;
};

void RaceConsensus(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    HwAlgo1 consensus(k);
    std::vector<std::thread> ts;
    std::vector<Amount> decided(k);
    for (std::size_t i = 0; i < k; ++i) {
      ts.emplace_back(
          [&, i] { decided[i] = consensus.propose(i, 1000 + i); });
    }
    for (auto& t : ts) t.join();
    for (std::size_t i = 1; i < k; ++i) {
      if (decided[i] != decided[0]) {
        state.SkipWithError("agreement violated!");
      }
    }
    benchmark::DoNotOptimize(decided);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(RaceConsensus)->RangeMultiplier(2)->Range(1, 16)->UseRealTime();

void MutexConsensusBaseline(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    MutexConsensus consensus;
    std::vector<std::thread> ts;
    std::vector<Amount> decided(k);
    for (std::size_t i = 0; i < k; ++i) {
      ts.emplace_back(
          [&, i] { decided[i] = consensus.propose(1000 + i); });
    }
    for (auto& t : ts) t.join();
    benchmark::DoNotOptimize(decided);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(MutexConsensusBaseline)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->UseRealTime();

/// Single-threaded decision-step cost: one CAS on the packed word.
void RaceDecisionStep(benchmark::State& state) {
  for (auto _ : state) {
    AtomicRaceToken race(1000, {1000, 501, 501});
    benchmark::DoNotOptimize(race.try_spend(1));
  }
}
BENCHMARK(RaceDecisionStep);

}  // namespace

BENCHMARK_MAIN();
