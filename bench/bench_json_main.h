// Shared main() body for benches that always emit a JSON artifact: runs
// google-benchmark with --benchmark_out defaulted to `default_out`
// (format json) unless the caller passed their own --benchmark_out.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace tokensync_bench {

inline int run_benchmarks_with_default_json(int argc, char** argv,
                                            const char* default_out) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Exact flag or --benchmark_out=... — NOT --benchmark_out_format,
    // which alone should not suppress the default artifact.
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace tokensync_bench
