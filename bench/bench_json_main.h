// Shared main() body for benches that always emit a JSON artifact: runs
// google-benchmark with --benchmark_out defaulted to `default_out`
// (format json) unless the caller passed their own --benchmark_out.
//
// When TOKENSYNC_BENCH_RESULTS_DIR is defined (bench/CMakeLists.txt
// points it at <repo>/bench/results), the default artifact is also
// copied there after the run: the build directory is disposable, the
// results directory is the tracked path CI uploads and PRs commit
// snapshots into — without the copy, every bench run strands its JSON
// in build/bench/ and the cross-PR perf trajectory never accumulates.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "net/simnet.h"

namespace tokensync_bench {

/// The one place the per-bench network counters are named: every
/// SimNet-backed bench exports the same NetStats keys (message counts
/// AND the wire-size byte totals of common/wire.h), so
/// scripts/bench_summary.py and cross-artifact comparisons never chase
/// per-bench spellings.
inline void export_net_counters(benchmark::State& state,
                                const tokensync::NetStats& net) {
  state.counters["msgs_sent"] = static_cast<double>(net.sent);
  state.counters["msgs_delivered"] = static_cast<double>(net.delivered);
  state.counters["msgs_dropped"] = static_cast<double>(net.dropped);
  state.counters["msgs_duplicated"] = static_cast<double>(net.duplicated);
  state.counters["bytes_sent"] = static_cast<double>(net.bytes_sent);
  state.counters["bytes_delivered"] =
      static_cast<double>(net.bytes_delivered);
}

/// Copies `artifact` (a file in the CWD) into the configured results
/// directory, creating it if needed.  Best-effort: a failure warns on
/// stderr but does not fail the bench run.
inline void copy_artifact_to_results_dir(const std::string& artifact) {
#ifdef TOKENSYNC_BENCH_RESULTS_DIR
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir(TOKENSYNC_BENCH_RESULTS_DIR);
  fs::create_directories(dir, ec);
  if (!ec) {
    fs::copy_file(artifact, dir / fs::path(artifact).filename(),
                  fs::copy_options::overwrite_existing, ec);
  }
  if (ec) {
    std::fprintf(stderr, "warning: could not copy %s to %s: %s\n",
                 artifact.c_str(), dir.string().c_str(),
                 ec.message().c_str());
  } else {
    std::fprintf(stderr, "bench artifact: %s (copied to %s)\n",
                 artifact.c_str(), dir.string().c_str());
  }
#else
  (void)artifact;
#endif
}

inline int run_benchmarks_with_default_json(int argc, char** argv,
                                            const char* default_out) {
  bool has_out = false;
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Exact flag or --benchmark_out=... — NOT --benchmark_out_format,
    // which alone should not suppress the default artifact.
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
    if (arg == "--benchmark_filter" ||
        arg.rfind("--benchmark_filter=", 0) == 0) {
      filtered = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // A caller-directed --benchmark_out is the caller's artifact to
  // manage, and a --benchmark_filter run is a partial grid: neither may
  // overwrite the tracked full-grid snapshot — only unfiltered
  // default-out runs feed the results trajectory.
  if (!has_out && !filtered) copy_artifact_to_results_dir(default_out);
  return 0;
}

}  // namespace tokensync_bench
