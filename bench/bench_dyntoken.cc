// E10 — the paper's Sec. 7 thesis, end to end: a token platform that
// synchronizes ONLY each account's spender group vs. one that totally
// orders everything through whole-network consensus.
//
// Metric: simulated network messages per settled operation (the
// discrete-event cost of coordination) and wall time to settle a fixed
// workload, as a function of
//   * the fraction of accounts with multiple enabled spenders
//     (DynPerAccount/<pct>), and
//   * replica count (scalability of the consensus-free fast path).
//
// Expected shape: per-account groups cost O(1) dissemination for
// single-spender accounts regardless of n (fast path), degrading only as
// the multi-spender fraction grows; the global-order baseline pays full
// Paxos among all n replicas for EVERY operation.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "dyntoken/dyntoken.h"

namespace {

using namespace tokensync;

struct Workload {
  std::size_t nodes = 4;
  std::size_t ops = 40;
  /// Percent of accounts that get an approved co-spender first.
  int multi_spender_pct = 0;
};

/// Runs the workload; returns (messages sent, ops settled).
std::pair<std::uint64_t, std::uint64_t> run_workload(
    Workload w, DynTokenNode::Mode mode, std::uint64_t seed) {
  DynTokenNode::Net net(w.nodes, NetConfig{.seed = seed, .min_delay = 1,
                                           .max_delay = 8});
  std::vector<std::unique_ptr<DynTokenNode>> nodes;
  for (ProcessId p = 0; p < w.nodes; ++p) {
    nodes.push_back(std::make_unique<DynTokenNode>(
        net, p, std::vector<Amount>(w.nodes, 1u << 20), mode));
  }

  Rng rng(seed * 31 + 7);
  // Phase 1: approvals creating multi-spender accounts.
  for (ProcessId p = 0; p < w.nodes; ++p) {
    if (static_cast<int>(rng.below(100)) < w.multi_spender_pct) {
      nodes[p]->submit(DynOp::approve(
          static_cast<ProcessId>((p + 1) % w.nodes), 1u << 19));
    }
  }
  net.run(4000000);

  // Phase 2: the payment workload — owners pay random peers; approved
  // spenders occasionally spend from their grantor account.
  for (std::size_t i = 0; i < w.ops; ++i) {
    const ProcessId who = static_cast<ProcessId>(rng.below(w.nodes));
    const AccountId grantor =
        static_cast<AccountId>((who + w.nodes - 1) % w.nodes);
    const DynOp op =
        nodes[who]->allowance(grantor, who) > 0 && rng.chance(1, 2)
            ? DynOp::transfer_from(grantor, account_of(who), 1)
            : DynOp::transfer(static_cast<AccountId>(rng.below(w.nodes)), 1);
    nodes[who]->submit(op);
    for (int s = 0; s < 50; ++s) net.step();
  }
  net.run(8000000);

  std::uint64_t settled = 0;
  for (const auto& n : nodes) {
    settled += n->all_submissions_settled() ? 1 : 0;
  }
  return {net.stats().sent, settled};
}

void DynPerAccount(benchmark::State& state) {
  Workload w;
  w.multi_spender_pct = static_cast<int>(state.range(0));
  std::uint64_t msgs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto [sent, settled] =
        run_workload(w, DynTokenNode::Mode::kPerAccountGroups, seed++);
    msgs = sent;
    benchmark::DoNotOptimize(settled);
  }
  state.counters["msgs_per_op"] =
      static_cast<double>(msgs) / static_cast<double>(w.ops);
}
BENCHMARK(DynPerAccount)->Arg(0)->Arg(25)->Arg(50)->Arg(100);

void DynGlobalOrder(benchmark::State& state) {
  Workload w;
  w.multi_spender_pct = static_cast<int>(state.range(0));
  std::uint64_t msgs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto [sent, settled] =
        run_workload(w, DynTokenNode::Mode::kGlobalOrder, seed++);
    msgs = sent;
    benchmark::DoNotOptimize(settled);
  }
  state.counters["msgs_per_op"] =
      static_cast<double>(msgs) / static_cast<double>(w.ops);
}
BENCHMARK(DynGlobalOrder)->Arg(0)->Arg(25)->Arg(50)->Arg(100);

void DynScaleReplicas(benchmark::State& state) {
  Workload w;
  w.nodes = static_cast<std::size_t>(state.range(0));
  w.multi_spender_pct = 25;
  std::uint64_t msgs = 0;
  std::uint64_t seed = 3;
  for (auto _ : state) {
    auto [sent, settled] =
        run_workload(w, DynTokenNode::Mode::kPerAccountGroups, seed++);
    msgs = sent;
    benchmark::DoNotOptimize(settled);
  }
  state.counters["msgs_per_op"] =
      static_cast<double>(msgs) / static_cast<double>(w.ops);
}
BENCHMARK(DynScaleReplicas)->Arg(3)->Arg(5)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
