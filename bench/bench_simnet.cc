// Distributed-runtime benchmark: every scenario workload × fault profile,
// run end-to-end on the deterministic SimNet, reporting SIMULATED commit
// latency and throughput (the protocol-quality metrics) next to wall-time
// (the simulator-speed metric).
//
// Per entry:
//   items_per_second   — committed operations per WALL second (how fast
//                        the simulator replays the scenario);
//   commit_p50/p99     — simulated submit→commit latency percentiles on
//                        the submitting replica (time units; 0 for the
//                        dyntoken and at_bcast workloads, whose nodes do
//                        not timestamp submissions);
//   commits_per_ktime  — committed operations per 1000 simulated time
//                        units (protocol throughput under the profile);
//   sim_time, committed, msgs_sent, msgs_dropped — run shape.
//
// Because scenarios are pure functions of (workload, fault, seed), every
// iteration replays the identical run: the counters are exact, not
// averages.  The binary always writes BENCH_simnet.json (google-benchmark
// JSON) unless --benchmark_out redirects it.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_json_main.h"
#include "sched/scenario.h"

namespace {

using namespace tokensync;

void Scenario(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.workload = all_workloads()[static_cast<std::size_t>(state.range(0))];
  cfg.fault =
      all_fault_profiles()[static_cast<std::size_t>(state.range(1))];
  cfg.seed = 7;
  cfg.num_replicas = 4;
  cfg.intensity = 6;

  ScenarioReport rep;
  for (auto _ : state) {
    rep = run_scenario(cfg);
    benchmark::DoNotOptimize(rep.history_digest);
  }
  if (!rep.ok()) {
    state.SkipWithError(("invariant violation: " + rep.summary()).c_str());
    return;
  }
  state.SetLabel(rep.workload + "/" + rep.fault);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rep.committed));
  state.counters["commit_p50"] = static_cast<double>(rep.latency.p50);
  state.counters["commit_p99"] = static_cast<double>(rep.latency.p99);
  state.counters["commit_mean"] = rep.latency.mean;
  state.counters["commits_per_ktime"] = rep.commits_per_ktime;
  state.counters["sim_time"] = static_cast<double>(rep.sim_time);
  state.counters["committed"] = static_cast<double>(rep.committed);
  tokensync_bench::export_net_counters(state, rep.net);
}

void scenario_matrix(benchmark::internal::Benchmark* b) {
  for (std::size_t w = 0; w < all_workloads().size(); ++w) {
    for (std::size_t f = 0; f < all_fault_profiles().size(); ++f) {
      b->Args({static_cast<long>(w), static_cast<long>(f)});
    }
  }
  b->ArgNames({"workload", "fault"});
  b->MinTime(0.01);
}

BENCHMARK(Scenario)->Apply(scenario_matrix);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_simnet.json");
}
