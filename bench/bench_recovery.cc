// E20 — recovery cost vs snapshot cadence (DESIGN.md §13).
//
// One lane: Recovery_CrashRejoin — erc20_block_storm under the
// crash_rejoin fault profile (one replica crashes mid-run, is rebuilt
// empty, and catches up from a peer snapshot + log suffix), swept over
// snapshot_interval × prune:
//
//   interval 0            — snapshotting off: the rejoiner replays the
//                           whole retained log from slot 0, and nothing
//                           can ever be pruned (the baseline both
//                           curves are measured against);
//   interval {2, 4, 8, 16} — a snapshot cut every N committed blocks;
//                           tighter cadence moves the installable
//                           boundary closer to the commit frontier and,
//                           with prune on, lowers the retained floor.
//
// Reported per cell, all SIMULATED protocol metrics:
//
//   snapshot_bytes     — serialized size of the reference replica's
//                        newest snapshot (0 when interval is 0);
//   catchup_ops        — ops the rejoiner replayed ABOVE its installed
//                        snapshot; the headline axis: a cadence whose
//                        boundary covers the frontier at rejoin time
//                        drives this to zero, interval 0 pays the full
//                        retained log (NOT strictly monotone in the
//                        interval — the boundary is quantized, so a
//                        coarse cadence can leave the same suffix as
//                        none at all);
//   pruned_slots       — slots truncated below the acked floor on the
//                        reference replica (prune on + interval small
//                        enough that a floor advanced before the end);
//   retained_log_bytes — decided-value bytes still held at the end: the
//                        memory-bound claim.  With prune on this SHRINKS
//                        as the cadence tightens; with prune off it
//                        matches the interval-0 baseline regardless;
//   commit_p50/p99, msgs/bytes — the cost side: snapshot requests,
//                        replies and catch-up queries ride the same
//                        simulated wire.
//
// Wall-clock time per iteration is the SIMULATION cost, not a protocol
// claim.  Alongside the console output the binary always writes
// BENCH_recovery.json, copied into bench/results/ on unfiltered runs
// (README.md "Reading the benchmarks").
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "bench_json_main.h"
#include "sched/scenario.h"

namespace {

using namespace tokensync;

void Recovery_CrashRejoin(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.workload = Workload::kErc20BlockStorm;
  cfg.fault = FaultProfile::kCrashRejoin;
  cfg.snapshot_interval = static_cast<std::uint64_t>(state.range(0));
  cfg.prune = state.range(1) != 0;
  cfg.seed = 7;
  cfg.num_replicas = 4;
  cfg.intensity = 4;
  ScenarioReport rep;
  for (auto _ : state) {
    rep = run_scenario(cfg);
    benchmark::DoNotOptimize(rep.history_digest);
  }
  if (!rep.ok()) {
    state.SkipWithError(("invariant violation: " + rep.summary()).c_str());
    return;
  }
  state.SetLabel(rep.workload + "/" + rep.fault + "/interval=" +
                 std::to_string(cfg.snapshot_interval) +
                 (cfg.prune ? "/prune" : "/keep"));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rep.committed));
  state.counters["committed"] = static_cast<double>(rep.committed);
  state.counters["slots"] = static_cast<double>(rep.slots);
  state.counters["snapshot_bytes"] =
      static_cast<double>(rep.snapshot_bytes);
  state.counters["catchup_ops"] = static_cast<double>(rep.catchup_ops);
  state.counters["pruned_slots"] = static_cast<double>(rep.pruned_slots);
  state.counters["retained_log_bytes"] =
      static_cast<double>(rep.retained_log_bytes);
  state.counters["commit_p50"] = static_cast<double>(rep.latency.p50);
  state.counters["commit_p99"] = static_cast<double>(rep.latency.p99);
  state.counters["sim_time"] = static_cast<double>(rep.sim_time);
  tokensync_bench::export_net_counters(state, rep.net);
}

void recovery_grid(benchmark::internal::Benchmark* b) {
  // Interval 0 has no snapshots, so the prune axis is inert — pin it
  // off rather than report a duplicate cell.
  b->Args({0, 0});
  for (int interval : {2, 4, 8, 16}) {
    for (int prune : {0, 1}) {
      b->Args({interval, prune});
    }
  }
  b->ArgNames({"interval", "prune"});
  b->MinTime(0.01);
}

BENCHMARK(Recovery_CrashRejoin)->Apply(recovery_grid);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_recovery.json");
}
