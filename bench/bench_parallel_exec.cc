// E12 — the commutativity-aware parallel executor across the
// threads × conflict-rate × shard-count grid (DESIGN.md §9).
//
// Each cell executes one fixed 4096-op ERC20 batch through the wave
// pipeline.  `conflict_pct` is the probability an operation lands in the
// 4-account hot set instead of its caller's disjoint neighborhood: at
// 0% the conflict graph is wide (few waves — the paper's commuting
// regime, speedup bounded only by cores), at 100% almost every op
// chains on the same σ-groups (waves ≈ longest conflict chain — the
// irreducible-serialization regime; no thread count helps, exactly the
// paper's point).  The escalation lane gets its own sweep: `esc_pct`
// whole-state barriers interleaved into a commuting storm.
//
// Per-op simulated validation (~0.5 µs) stands in for signature/VM work
// — the parallelizable payload.  On a 1-core host every cell serializes:
// the grid AXES are recorded either way, and multi-core hosts see the
// spread (same caveat as bench_token_throughput, EXPERIMENTS.md E9).
//
// Alongside the console output the binary always writes
// BENCH_parallel_exec.json, copied into bench/results/ so the artifact
// trajectory accumulates across PRs (see README.md "Reading the
// benchmarks").  Per-cell counters: waves, escalated ops, parallelism
// (mean ops/wave).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "bench_json_main.h"
#include "common/rng.h"
#include "exec/exec_specs.h"

namespace {

using namespace tokensync;

constexpr std::size_t kAccounts = 64;
constexpr std::size_t kHotAccounts = 4;
constexpr std::size_t kBatchOps = 4096;
constexpr unsigned kValidationCost = 500;  // ~0.5 µs per op

Erc20State initial_state() {
  return Erc20State(std::vector<Amount>(kAccounts, 1u << 20),
                    std::vector<std::vector<Amount>>(
                        kAccounts, std::vector<Amount>(kAccounts, 1)));
}

/// A fixed batch: with probability conflict_pct% an op transfers within
/// the hot set (conflict chains), otherwise inside its caller's FIXED
/// disjoint pair {a, a+32} — pairs never overlap, so the 0% batch's only
/// conflicts are reuses of the same pair (kBatchOps/32 chain length, the
/// floor a finite account set imposes).  The conflict axis is therefore
/// monotone: 0% → parallelism ≈ 32, 100% → parallelism → 1.
std::vector<Erc20Ledger::BatchOp> make_batch(int conflict_pct) {
  Rng rng(1000 + static_cast<std::uint64_t>(conflict_pct));
  std::vector<Erc20Ledger::BatchOp> batch;
  batch.reserve(kBatchOps);
  for (std::size_t i = 0; i < kBatchOps; ++i) {
    if (rng.chance(static_cast<std::uint64_t>(conflict_pct), 100)) {
      const auto src = static_cast<ProcessId>(rng.below(kHotAccounts));
      const auto dst = static_cast<AccountId>(rng.below(kHotAccounts));
      batch.push_back({src, Erc20Op::transfer(dst, 1)});
    } else {
      const auto self = static_cast<ProcessId>(i % (kAccounts / 2));
      const auto dst = static_cast<AccountId>(self + kAccounts / 2);
      batch.push_back({self, Erc20Op::transfer(dst, 1)});
    }
  }
  return batch;
}

/// A commuting storm with esc_pct% whole-state barriers (totalSupply):
/// the escalation-lane cost sweep.
std::vector<Erc20Ledger::BatchOp> make_escalation_batch(int esc_pct) {
  Rng rng(2000 + static_cast<std::uint64_t>(esc_pct));
  std::vector<Erc20Ledger::BatchOp> batch;
  batch.reserve(kBatchOps);
  for (std::size_t i = 0; i < kBatchOps; ++i) {
    const auto self = static_cast<ProcessId>(i % (kAccounts / 2));
    if (rng.chance(static_cast<std::uint64_t>(esc_pct), 100)) {
      batch.push_back({self, Erc20Op::total_supply()});
    } else {
      batch.push_back({self, Erc20Op::transfer(
                                 static_cast<AccountId>(
                                     self + kAccounts / 2),
                                 1)});
    }
  }
  return batch;
}

void record_schedule(benchmark::State& state, const ExecReport& rep) {
  state.counters["waves"] =
      static_cast<double>(rep.schedule.num_waves);
  state.counters["escalated"] =
      static_cast<double>(rep.schedule.escalated);
  state.counters["parallelism"] = rep.schedule.parallelism();
}

// Ledger and executor (with its worker pool) live OUTSIDE the timed
// loop: the cell measures plan + wave execution, not thread spawn/join
// or state setup scaled by the very thread axis under study.  Running
// the same batch repeatedly drifts balances by ≤ a few per account per
// iteration against 2^20 initial — every transfer keeps succeeding for
// any realistic iteration count, so the measured work is constant.
void ParallelExec_ConflictGrid(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const int conflict_pct = static_cast<int>(state.range(1));
  const auto shards = static_cast<std::size_t>(state.range(2));
  const auto batch = make_batch(conflict_pct);
  Erc20Ledger ledger(initial_state(), kValidationCost, shards);
  Erc20Executor exec(ledger, {.threads = threads});
  ExecReport last;
  for (auto _ : state) {
    last = exec.execute(batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatchOps));
  record_schedule(state, last);
}

void ParallelExec_EscalationLane(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const int esc_pct = static_cast<int>(state.range(1));
  const auto batch = make_escalation_batch(esc_pct);
  Erc20Ledger ledger(initial_state(), kValidationCost, /*num_shards=*/0);
  Erc20Executor exec(ledger, {.threads = threads});
  ExecReport last;
  for (auto _ : state) {
    last = exec.execute(batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatchOps));
  record_schedule(state, last);
}

/// Baseline: the same batches straight through ConcurrentLedger::
/// apply_batch on one thread — what the executor's planning overhead
/// must beat once cores exist.
void ParallelExec_ApplyBatchBaseline(benchmark::State& state) {
  const int conflict_pct = static_cast<int>(state.range(0));
  const auto batch = make_batch(conflict_pct);
  Erc20Ledger ledger(initial_state(), kValidationCost, /*num_shards=*/0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ledger.apply_batch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatchOps));
}

void conflict_grid(benchmark::internal::Benchmark* b) {
  for (int threads : {1, 2, 4, 8}) {
    for (int conflict : {0, 25, 50, 100}) {
      for (int shards : {1, 16, static_cast<int>(kAccounts)}) {
        b->Args({threads, conflict, shards});
      }
    }
  }
  b->ArgNames({"threads", "conflict_pct", "shards"});
  b->UseRealTime();
  b->MinTime(0.05);
}

void escalation_sweep(benchmark::internal::Benchmark* b) {
  for (int threads : {1, 4}) {
    for (int esc : {0, 1, 5, 25}) {
      b->Args({threads, esc});
    }
  }
  b->ArgNames({"threads", "esc_pct"});
  b->UseRealTime();
  b->MinTime(0.05);
}

BENCHMARK(ParallelExec_ConflictGrid)->Apply(conflict_grid);
BENCHMARK(ParallelExec_EscalationLane)->Apply(escalation_sweep);
BENCHMARK(ParallelExec_ApplyBatchBaseline)
    ->Arg(0)
    ->Arg(100)
    ->ArgName("conflict_pct")
    ->UseRealTime()
    ->MinTime(0.05);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_parallel_exec.json");
}
