// E16/E17 — the synchronization-tiered lane split, measured
// (DESIGN.md §11): how many consensus slots and messages the CN = 1
// fast lane saves versus running the identical script all-Paxos.
//
// One lane: HybridLanes_Scenario — the hybrid workloads over SimNet,
// workload × fault × mode, where mode 0 is the hybrid routing
// (SyncTraits decides per op) and mode 1 is the force-consensus
// baseline (every op pays a Paxos slot; ScenarioConfig::
// hybrid_force_consensus).  Reported per cell, all SIMULATED protocol
// metrics:
//
//   consensus_slots    — Paxos slots committed on the reference replica
//                        (0 for the pure-transfer storm under hybrid
//                        routing — the headline number);
//   fast_lane_commits  — ops that committed through the ERB lane;
//   fast_share         — fast_lane_commits / committed;
//   msgs_sent          — total network sends (ERB data+acks vs the
//                        Paxos prepare/promise/accept/accepted/decide
//                        fan; the message-reduction claim);
//   commit_p50/p99     — commit latency percentiles (fast ops clock
//                        submit -> local ERB delivery, consensus ops
//                        submit -> barrier apply);
//   commits_per_ktime  — committed ops per 1000 simulated time units.
//
// Wall-clock time per iteration is the SIMULATION cost, not a protocol
// claim (same caveat as bench_simnet).  Alongside the console output
// the binary always writes BENCH_hybrid_lanes.json, copied into
// bench/results/ on unfiltered runs (README.md "Reading the
// benchmarks").
#include <benchmark/benchmark.h>

#include <cstddef>

#include "bench_json_main.h"
#include "sched/scenario.h"

namespace {

using namespace tokensync;

void HybridLanes_Scenario(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.workload = state.range(0) == 0 ? Workload::kErc20FastlaneStorm
                                     : Workload::kMixedSyncTiers;
  // Same fault-axis numbering as bench_simnet (all_fault_profiles()
  // order: none, lossy, lossy_dup, partition_heal, minority_crash), so
  // fault:N cells are comparable across the committed artifacts.
  cfg.fault =
      all_fault_profiles()[static_cast<std::size_t>(state.range(1))];
  cfg.hybrid_force_consensus = state.range(2) == 1;
  cfg.seed = 7;
  cfg.num_replicas = 4;
  cfg.intensity = 6;
  ScenarioReport rep;
  for (auto _ : state) {
    rep = run_scenario(cfg);
    benchmark::DoNotOptimize(rep.history_digest);
  }
  if (!rep.ok()) {
    state.SkipWithError(("invariant violation: " + rep.summary()).c_str());
    return;
  }
  state.SetLabel(rep.workload + "/" + rep.fault +
                 (cfg.hybrid_force_consensus ? "/all_paxos" : "/hybrid"));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rep.committed));
  state.counters["committed"] = static_cast<double>(rep.committed);
  state.counters["consensus_slots"] = static_cast<double>(rep.slots);
  state.counters["fast_lane_commits"] =
      static_cast<double>(rep.fast_lane_ops);
  state.counters["fast_share"] =
      rep.committed ? static_cast<double>(rep.fast_lane_ops) /
                          static_cast<double>(rep.committed)
                    : 0.0;
  tokensync_bench::export_net_counters(state, rep.net);
  state.counters["commit_p50"] = static_cast<double>(rep.latency.p50);
  state.counters["commit_p99"] = static_cast<double>(rep.latency.p99);
  state.counters["commits_per_ktime"] = rep.commits_per_ktime;
  state.counters["sim_time"] = static_cast<double>(rep.sim_time);
}

void lane_grid(benchmark::internal::Benchmark* b) {
  for (int workload : {0, 1}) {
    for (int fault = 0;
         fault < static_cast<int>(all_fault_profiles().size()); ++fault) {
      for (int force : {0, 1}) {
        b->Args({workload, fault, force});
      }
    }
  }
  b->ArgNames({"workload", "fault", "force_consensus"});
  b->MinTime(0.01);
}

BENCHMARK(HybridLanes_Scenario)->Apply(lane_grid);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_hybrid_lanes.json");
}
