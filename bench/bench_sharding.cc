// E22/E23 — consensus-slot scaling across replica groups (DESIGN.md §14).
//
// One lane: Sharding_ZipfianStorm — the erc20_zipfian_shards workload
// (fault-free, seed 7) swept over
//
//   groups ∈ {1, 2, 4}       account-space partitions, each its own
//                            block pipeline over the shared SimNet;
//   cross_pct ∈ {10, 40}     the fraction of transfers forced across
//                            groups (2PC prepare/commit/ack instead of
//                            one in-lane op).
//
// The workload is sized so consensus is SIZE-cut-bound (block_max_ops
// 2, intensity 16): at one group every transfer shares a single total
// order, so the slot bill is the op count over the batch size; with
// more groups each lane only orders its own slice.  The headline
// counter is group_slots_max — the BUSIEST group's committed slots,
// i.e. the per-group consensus bill.  The ISSUE 8 acceptance criterion:
// for the intra-heavy sweep (cross 10%), group_slots_max at groups > 1
// is STRICTLY below the 1-group baseline's slots.  The cross-heavy
// sweep (40%) shows the price of coordination: every cross transfer
// adds prepare + commit + ack commits spread over both lanes, so total
// slots GROW with the cross share even as the per-group max stays low.
//
// Reported per cell, all SIMULATED protocol metrics:
//
//   slots            — committed blocks summed over every group;
//   group_slots_max  — committed blocks of the busiest group (headline);
//   committed        — ops applied, client + 2PC phase + migration;
//   cross_ops/aborts — 2PC transfers that fully committed / refunded;
//   migrations       — hot-account ownership moves retired;
//   commit_p50/p99, msgs/bytes — per-block commit latency and the wire
//                      bill (more groups = more, smaller blocks).
//
// Wall-clock time per iteration is the SIMULATION cost, not a protocol
// claim.  Alongside the console output the binary always writes
// BENCH_sharding.json, copied into bench/results/ on unfiltered runs
// (README.md "Reading the benchmarks").
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "bench_json_main.h"
#include "sched/scenario.h"

namespace {

using namespace tokensync;

void Sharding_ZipfianStorm(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.workload = Workload::kErc20ZipfianShards;
  cfg.fault = FaultProfile::kNone;
  cfg.seed = 7;
  cfg.num_replicas = 4;
  cfg.intensity = 16;
  cfg.block_max_ops = 2;  // size-cut-bound: slots track the op volume
  cfg.num_groups = static_cast<std::uint32_t>(state.range(0));
  cfg.cross_pct = static_cast<std::uint32_t>(state.range(1));
  ScenarioReport rep;
  for (auto _ : state) {
    rep = run_scenario(cfg);
    benchmark::DoNotOptimize(rep.history_digest);
  }
  if (!rep.ok()) {
    state.SkipWithError(("invariant violation: " + rep.summary()).c_str());
    return;
  }
  state.SetLabel(rep.workload + "/" + rep.fault + "/groups=" +
                 std::to_string(cfg.num_groups) + "/cross=" +
                 std::to_string(cfg.cross_pct));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rep.committed));
  state.counters["committed"] = static_cast<double>(rep.committed);
  state.counters["slots"] = static_cast<double>(rep.slots);
  state.counters["groups"] = static_cast<double>(rep.groups);
  state.counters["group_slots_max"] =
      static_cast<double>(rep.group_slots_max);
  state.counters["cross_ops"] = static_cast<double>(rep.cross_shard_ops);
  state.counters["cross_aborts"] =
      static_cast<double>(rep.cross_shard_aborts);
  state.counters["migrations"] = static_cast<double>(rep.migrations);
  state.counters["proposal_bytes"] =
      static_cast<double>(rep.proposal_bytes);
  state.counters["commit_p50"] = static_cast<double>(rep.latency.p50);
  state.counters["commit_p99"] = static_cast<double>(rep.latency.p99);
  state.counters["sim_time"] = static_cast<double>(rep.sim_time);
  tokensync_bench::export_net_counters(state, rep.net);
}

void sharding_grid(benchmark::internal::Benchmark* b) {
  for (int groups : {1, 2, 4}) {
    // cross_pct is inert at one group (everything is intra); pin the
    // baseline to one cell rather than report duplicates.
    if (groups == 1) {
      b->Args({1, 0});
      continue;
    }
    for (int cross : {10, 40}) {
      b->Args({groups, cross});
    }
  }
  b->ArgNames({"groups", "cross"});
  b->MinTime(0.01);
}

BENCHMARK(Sharding_ZipfianStorm)->Apply(sharding_grid);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_sharding.json");
}
