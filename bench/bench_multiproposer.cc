// E26/E27 — the leaderless multi-proposer pipeline (DESIGN.md §16).
//
// One lane: MultiProposer_Scenario — the fixed-size reference storm
// (erc20_multiproposer_storm) over SimNet, num_proposers × fault:
//
//   num_proposers ∈ {1, 2, 4} — P = 1 is the single-proposer baseline
//                (one lane cuts sub-blocks, consensus covers them);
//                P = 4 splits the SAME total storm across four
//                concurrent sub-block lanes, so each covering proposal
//                references more sub-blocks and the storm needs fewer
//                slots (E26);
//   fault ∈ {none, lossy_dup, minority_crash} — the profiles where the
//                claim must hold; lossy_dup additionally exercises
//                recover-on-miss and the racing-proposer dedup guard.
//
// Reported per cell, all SIMULATED protocol metrics:
//
//   slots / subblocks_per_slot — the headline axis: at P = 4 the same
//                committed-op total rides materially fewer consensus
//                slots, each covering more sub-blocks (the CI smoke
//                gate asserts P=4 slots strictly below P=1 on the
//                committed JSON);
//   commit_p50 / commit_p99 — submit -> apply per op; rank-rotation
//                masks proposer retry stalls, so the tail tightens
//                with P (E27);
//   dup_refs_dropped — sub-block references committed twice by racing
//                proposers and dropped by the dedup guard (exactly-once
//                apply; tests/multi_proposer_test.cc pins the count);
//   proposal_bytes / bytes_per_slot — decided-value bytes: reference
//                proposals cost ~16 B per sub-block regardless of op
//                payload size;
//   miss_recoveries — committed references whose sub-block needed the
//                kGetSubs round-trip (non-zero under loss).
//
// Wall-clock time per iteration is the SIMULATION cost, not a protocol
// claim (same caveat as bench_simnet).  Alongside the console output
// the binary always writes BENCH_multiproposer.json, copied into
// bench/results/ on unfiltered runs (README.md "Reading the
// benchmarks").
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "bench_json_main.h"
#include "sched/scenario.h"

namespace {

using namespace tokensync;

// The per-cell seed set.  A single run's p99 is ONE op's latency —
// whichever op drew the worst loss/retry luck — so single-seed tails
// are noise.  Every counter below is the MEAN over this fixed set
// (same set for every cell, so the P axis compares like with like);
// each individual run still carries the full determinism audits.
constexpr std::uint64_t kSeeds[] = {5, 7, 11, 13, 17, 19, 23, 29, 31};

void MultiProposer_Scenario(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.workload = Workload::kErc20MultiproposerStorm;
  cfg.num_proposers = static_cast<std::size_t>(state.range(0));
  // Same fault-axis numbering as bench_simnet (all_fault_profiles()
  // order: none, lossy, lossy_dup, partition_heal, minority_crash).
  cfg.fault =
      all_fault_profiles()[static_cast<std::size_t>(state.range(1))];
  cfg.num_replicas = 4;
  cfg.intensity = 6;
  std::vector<ScenarioReport> reps;
  for (auto _ : state) {
    reps.clear();
    for (const std::uint64_t seed : kSeeds) {
      cfg.seed = seed;
      reps.push_back(run_scenario(cfg));
      benchmark::DoNotOptimize(reps.back().history_digest);
    }
  }
  const double n = static_cast<double>(reps.size());
  const auto mean = [&](auto field) {
    double sum = 0;
    for (const ScenarioReport& r : reps) sum += static_cast<double>(field(r));
    return sum / n;
  };
  for (const ScenarioReport& rep : reps) {
    if (!rep.ok()) {
      state.SkipWithError(
          ("invariant violation: " + rep.summary()).c_str());
      return;
    }
  }
  const ScenarioReport& rep = reps.front();
  state.SetLabel(rep.workload + "/" + rep.fault + "/P=" +
                 std::to_string(cfg.num_proposers));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rep.committed));
  state.counters["committed"] =
      mean([](const auto& r) { return r.committed; });
  state.counters["slots"] = mean([](const auto& r) { return r.slots; });
  state.counters["subblocks_per_slot"] =
      mean([](const auto& r) { return r.subblocks_per_slot; });
  state.counters["dup_refs_dropped"] =
      mean([](const auto& r) { return r.dup_refs_dropped; });
  state.counters["proposal_bytes"] =
      mean([](const auto& r) { return r.proposal_bytes; });
  state.counters["bytes_per_slot"] =
      mean([](const auto& r) {
        return r.slots ? static_cast<double>(r.proposal_bytes) /
                             static_cast<double>(r.slots)
                       : 0.0;
      });
  state.counters["miss_recoveries"] =
      mean([](const auto& r) { return r.miss_recoveries; });
  state.counters["commit_p50"] =
      mean([](const auto& r) { return r.latency.p50; });
  state.counters["commit_p99"] =
      mean([](const auto& r) { return r.latency.p99; });
  state.counters["commits_per_ktime"] =
      mean([](const auto& r) { return r.commits_per_ktime; });
  state.counters["sim_time"] =
      mean([](const auto& r) { return r.sim_time; });
  NetStats net{};
  for (const ScenarioReport& r : reps) {
    net.sent += r.net.sent;
    net.delivered += r.net.delivered;
    net.dropped += r.net.dropped;
    net.duplicated += r.net.duplicated;
    net.bytes_sent += r.net.bytes_sent;
    net.bytes_delivered += r.net.bytes_delivered;
  }
  net.sent /= reps.size();
  net.delivered /= reps.size();
  net.dropped /= reps.size();
  net.duplicated /= reps.size();
  net.bytes_sent /= reps.size();
  net.bytes_delivered /= reps.size();
  tokensync_bench::export_net_counters(state, net);
}

void proposer_grid(benchmark::internal::Benchmark* b) {
  // Fault indices into all_fault_profiles(): 0 = none, 2 = lossy_dup,
  // 4 = minority_crash — the E26 grid.
  for (int fault : {0, 2, 4}) {
    for (int proposers : {1, 2, 4}) {
      b->Args({proposers, fault});
    }
  }
  b->ArgNames({"proposers", "fault"});
  b->MinTime(0.01);
}

BENCHMARK(MultiProposer_Scenario)->Apply(proposer_grid);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_multiproposer.json");
}
