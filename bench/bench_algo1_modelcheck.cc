// E2/E3 — Algorithm 1 under the exhaustive model checker and the random
// scheduler.
//
// Reported series:
//   * Algo1Exhaustive/k      — full interleaving exploration of the
//     Theorem-2 construction (states explored grow with k; all green);
//   * Algo1UViolation        — counterexample discovery when U fails
//     (the checker FINDS disagreement — E3);
//   * Algo1RandomRun/k       — single consensus round cost on the
//     simulated substrate as k grows.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/algo1.h"
#include "core/state_class.h"
#include "modelcheck/explorer.h"
#include "sched/scheduler.h"

namespace {

using namespace tokensync;

std::vector<Amount> proposals_for(std::size_t k) {
  std::vector<Amount> out;
  for (std::size_t i = 0; i < k; ++i) out.push_back(100 + i);
  return out;
}

void Algo1Exhaustive(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto props = proposals_for(k);
  std::size_t configs = 0;
  for (auto _ : state) {
    Algo1Config cfg = make_algo1(k + 1, k, 9);
    const auto res =
        explore_all(cfg, props, cfg.max_own_steps(), /*check_solo=*/false);
    if (!res.all_ok()) state.SkipWithError("consensus property violated!");
    configs = res.configs_explored;
    benchmark::DoNotOptimize(res);
  }
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(Algo1Exhaustive)->DenseRange(1, 4);

void Algo1UViolation(benchmark::State& state) {
  // k = 3 spenders with allowances summing to <= balance: U fails, and
  // the explorer must find an agreement violation.
  const std::vector<Amount> props{100, 101, 102};
  bool found = false;
  for (auto _ : state) {
    Erc20State q(4, 0, 10);
    q.set_allowance(0, 1, 4);
    q.set_allowance(0, 2, 4);
    Algo1Config cfg(q, 0, 3, {0, 1, 2}, props);
    const auto res =
        explore_all(cfg, props, cfg.max_own_steps(), /*check_solo=*/false);
    found = !res.agreement;
    if (res.agreement) {
      state.SkipWithError("U violation NOT detected — regression!");
    }
    benchmark::DoNotOptimize(res);
  }
  state.counters["disagreement_found"] = found ? 1 : 0;
}
BENCHMARK(Algo1UViolation);

void Algo1RandomRun(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto props = proposals_for(k);
  Rng rng(7);
  for (auto _ : state) {
    Algo1Config cfg = make_algo1(k + 1, k, 1001);
    auto res = run_random(cfg, rng, {});
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(Algo1RandomRun)->RangeMultiplier(2)->Range(2, 64);

}  // namespace

BENCHMARK_MAIN();
