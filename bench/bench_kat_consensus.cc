// E7 — the Guerraoui et al. baseline: consensus from a k-shared account
// (CN(k-AT) ≥ k), exhaustively explored and randomly scheduled, plus the
// ERC721/ERC777 Sec.-6 adaptations for comparison.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/erc721_consensus.h"
#include "core/erc777_consensus.h"
#include "core/kat_consensus.h"
#include "modelcheck/explorer.h"
#include "sched/scheduler.h"

namespace {

using namespace tokensync;

std::vector<Amount> proposals_for(std::size_t k) {
  std::vector<Amount> out;
  for (std::size_t i = 0; i < k; ++i) out.push_back(500 + i);
  return out;
}

void KatExhaustive(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto props = proposals_for(k);
  std::size_t configs = 0;
  for (auto _ : state) {
    KatConsensusConfig cfg(k, props);
    const auto res =
        explore_all(cfg, props, cfg.max_own_steps(), /*check_solo=*/false);
    if (!res.all_ok()) state.SkipWithError("k-AT consensus violated!");
    configs = res.configs_explored;
    benchmark::DoNotOptimize(res);
  }
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(KatExhaustive)->DenseRange(1, 3);

void KatRandomRun(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto props = proposals_for(k);
  Rng rng(5);
  for (auto _ : state) {
    KatConsensusConfig cfg(k, props);
    auto res = run_random(cfg, rng, {});
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(KatRandomRun)->RangeMultiplier(2)->Range(2, 64);

void Erc721RandomRun(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto props = proposals_for(k);
  Rng rng(6);
  for (auto _ : state) {
    Erc721ConsensusConfig cfg(k, props);
    auto res = run_random(cfg, rng, {});
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(Erc721RandomRun)->RangeMultiplier(4)->Range(2, 32);

void Erc777RandomRun(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto props = proposals_for(k);
  Rng rng(7);
  for (auto _ : state) {
    Erc777ConsensusConfig cfg(k, 101, props);
    auto res = run_random(cfg, rng, {});
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(Erc777RandomRun)->RangeMultiplier(4)->Range(2, 32);

}  // namespace

BENCHMARK_MAIN();
