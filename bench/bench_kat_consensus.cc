// E7 — the token-race consensus family, benchmarked through the GENERIC
// registration path: every protocol in token_race_protocols() (k-AT
// baseline of Guerraoui et al., plus the Sec.-6 ERC721/ERC777
// adaptations) gets an exhaustive-exploration benchmark and a
// random-schedule benchmark, registered dynamically — adding a token spec
// to the registry adds its benchmarks here for free.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "modelcheck/register_protocols.h"

namespace {

using namespace tokensync;

std::vector<Amount> proposals_for(std::size_t k) {
  std::vector<Amount> out;
  for (std::size_t i = 0; i < k; ++i) out.push_back(500 + i);
  return out;
}

void RunExhaustive(benchmark::State& state, const TokenRaceProtocol& proto) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto props = proposals_for(k);
  std::size_t configs = 0;
  for (auto _ : state) {
    const auto res = proto.explore(k, props, /*check_solo=*/false);
    if (!res.all_ok()) state.SkipWithError("consensus violated!");
    configs = res.configs_explored;
    benchmark::DoNotOptimize(res);
  }
  state.counters["configs"] = static_cast<double>(configs);
}

void RunRandom(benchmark::State& state, const TokenRaceProtocol& proto) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto props = proposals_for(k);
  Rng rng(5);
  for (auto _ : state) {
    auto res = proto.run_random(k, props, rng, {});
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * k);
}

void register_all() {
  for (const auto& proto : token_race_protocols()) {
    benchmark::RegisterBenchmark(
        (proto.name + "/Exhaustive").c_str(),
        [&proto](benchmark::State& s) { RunExhaustive(s, proto); })
        ->DenseRange(1, 3);
    benchmark::RegisterBenchmark(
        (proto.name + "/RandomRun").c_str(),
        [&proto](benchmark::State& s) { RunRandom(s, proto); })
        ->RangeMultiplier(4)
        ->Range(2, 32);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
