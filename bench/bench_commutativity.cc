// E5 — Theorem 3's case analysis and Figure 1, regenerated.
//
// Running this binary first PRINTS the two Figure-1 state diagrams and the
// aggregated commutativity case table (the data of the proof's Cases 1–4),
// then times the underlying classification machinery.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "modelcheck/commutativity.h"

namespace {

using namespace tokensync;

Erc20State rich_state() {
  Erc20State q({6, 5, 4, 3}, {{0, 0, 0, 0},
                              {0, 0, 0, 0},
                              {0, 0, 0, 0},
                              {0, 0, 0, 0}});
  q.set_allowance(0, 1, 4);
  q.set_allowance(0, 2, 4);
  q.set_allowance(1, 2, 5);
  return q;
}

void CaseTable(benchmark::State& state) {
  const Erc20State q = rich_state();
  for (auto _ : state) {
    const auto rows = theorem3_case_table(q, {0, 1, 4, 5});
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(CaseTable);

void PairClassification(benchmark::State& state) {
  const Erc20State q = rich_state();
  const Invocation o1{1, Erc20Op::transfer_from(0, 1, 4)};
  const Invocation o2{2, Erc20Op::transfer_from(0, 2, 4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_pair(q, o1, o2));
  }
}
BENCHMARK(PairClassification);

}  // namespace

int main(int argc, char** argv) {
  using namespace tokensync;
  std::printf("%s\n", render_figure1_case2().c_str());
  std::printf("%s\n", render_figure1_case4().c_str());
  const auto rows = theorem3_case_table(rich_state(), {0, 1, 4, 5});
  std::printf("%s\n", render_case_table(rows).c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
