// E24/E25 — the Byzantine tier, measured (DESIGN.md §15): what the
// Bracha fast lane costs over ERB, and what the respend defense catches.
//
// One lane: Byzantine_RespendStorm — the erc20_respend_storm over
// SimNet, lane × fault × equivocators:
//
//   lane          0 = ERB (crash-tolerant baseline), 1 = Bracha
//                 (Byzantine-tolerant: SEND/ECHO/READY, f = ⌊(n-1)/3⌋);
//   fault         the all_fault_profiles() axis, same numbering as
//                 bench_simnet / bench_hybrid_lanes;
//   equivocators  0 = honest run, 1 = the top replica forks its respend
//                 SEND at the wire (SimNet::set_equivocator) — Bracha
//                 lane only (the ERB lane has no equivocation defense,
//                 run_scenario rejects the combination).
//
// E24 (lane cost) compares lane:0 vs lane:1 at equivocators:0 —
// msgs_sent / bytes_sent / commit_p50 for the SAME committed history
// (the lane swap changes transport, never content).  E25 (detection)
// reads the lane:1 / equivocators:1 cells — conflict_proofs,
// quarantined_origins and equivocation_commits count what the defense
// caught; committed history and consensus_slots (always 0) match the
// honest cell, the at-most-one-branch claim in benchmark form.
//
// Wall-clock per iteration is SIMULATION cost, not a protocol claim
// (bench_simnet's caveat).  Writes BENCH_byzantine.json; unfiltered
// runs copy it into bench/results/ (README.md "Reading the benchmarks").
#include <benchmark/benchmark.h>

#include <cstddef>

#include "bench_json_main.h"
#include "sched/scenario.h"

namespace {

using namespace tokensync;

void Byzantine_RespendStorm(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.workload = Workload::kErc20RespendStorm;
  cfg.fast_lane = state.range(0) == 0 ? FastLane::kErb : FastLane::kBracha;
  cfg.fault =
      all_fault_profiles()[static_cast<std::size_t>(state.range(1))];
  cfg.num_equivocators = static_cast<std::size_t>(state.range(2));
  cfg.seed = 7;
  cfg.num_replicas = 4;
  cfg.intensity = 6;
  ScenarioReport rep;
  for (auto _ : state) {
    rep = run_scenario(cfg);
    benchmark::DoNotOptimize(rep.history_digest);
  }
  if (!rep.ok()) {
    state.SkipWithError(("invariant violation: " + rep.summary()).c_str());
    return;
  }
  state.SetLabel(rep.workload + "/" + rep.fault +
                 (cfg.fast_lane == FastLane::kBracha ? "/bracha" : "/erb") +
                 (cfg.num_equivocators ? "/byzantine" : "/honest"));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rep.committed));
  state.counters["committed"] = static_cast<double>(rep.committed);
  state.counters["consensus_slots"] = static_cast<double>(rep.slots);
  state.counters["fast_lane_commits"] =
      static_cast<double>(rep.fast_lane_ops);
  state.counters["fast_share"] =
      rep.committed ? static_cast<double>(rep.fast_lane_ops) /
                          static_cast<double>(rep.committed)
                    : 0.0;
  state.counters["conflict_proofs"] =
      static_cast<double>(rep.conflict_proofs);
  state.counters["quarantined_origins"] =
      static_cast<double>(rep.quarantined_origins);
  state.counters["equivocation_commits"] =
      static_cast<double>(rep.equivocation_commits);
  tokensync_bench::export_net_counters(state, rep.net);
  state.counters["commit_p50"] = static_cast<double>(rep.latency.p50);
  state.counters["commit_p99"] = static_cast<double>(rep.latency.p99);
  state.counters["commits_per_ktime"] = rep.commits_per_ktime;
  state.counters["sim_time"] = static_cast<double>(rep.sim_time);
}

void byzantine_grid(benchmark::internal::Benchmark* b) {
  for (int lane : {0, 1}) {
    for (int fault = 0;
         fault < static_cast<int>(all_fault_profiles().size()); ++fault) {
      for (int eq : {0, 1}) {
        // Equivocation defense exists on the Bracha lane only.
        if (lane == 0 && eq == 1) continue;
        b->Args({lane, fault, eq});
      }
    }
  }
  b->ArgNames({"lane", "fault", "equivocators"});
  b->MinTime(0.01);
}

BENCHMARK(Byzantine_RespendStorm)->Apply(byzantine_grid);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_byzantine.json");
}
