// E14/E15 — the block pipeline across the batch_size × threads ×
// conflict_pct grid (DESIGN.md §10).
//
// Two lanes:
//
//   BlockReplay_Grid — the replay half in isolation: a fixed 4096-op
//   ERC20 stream (same conflict model as bench_parallel_exec: at 0%
//   conflict every op lives in its caller's disjoint account pair, at
//   100% almost everything chains through a 4-account hot set) chunked
//   into blocks of `batch_size` and applied through one ReplayEngine.
//   Small blocks pay planning overhead per few ops and cap each block's
//   wave width at batch_size; large blocks amortize planning and expose
//   the stream's full parallelism to the worker pool.  Wall-clock
//   ops/sec; counters record blocks, mean waves per block and mean
//   parallelism (ops/wave).  On the 1-core container every thread count
//   serializes — the grid axes are recorded for multi-core hosts (same
//   caveat as E9/E12).
//
//   BlockPipeline_Replicated — the pipeline end-to-end over SimNet: the
//   erc20_block_storm scenario at several size cuts, reporting SIMULATED
//   protocol metrics — consensus slots vs committed ops (ops_per_slot,
//   the amortization batching buys), commits/ktime and commit latency
//   percentiles, under a fault-free and a lossy+duplicating profile.
//   batch_size = 1 is the PR 2 one-op-per-slot baseline.
//
// Alongside the console output the binary always writes
// BENCH_block_pipeline.json, copied into bench/results/ on unfiltered
// runs (see README.md "Reading the benchmarks").
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "bench_json_main.h"
#include "common/rng.h"
#include "exec/exec_specs.h"
#include "exec/replay_engine.h"
#include "sched/scenario.h"

namespace {

using namespace tokensync;

constexpr std::size_t kAccounts = 64;
constexpr std::size_t kHotAccounts = 4;
constexpr std::size_t kStreamOps = 4096;
constexpr unsigned kValidationCost = 500;  // ~0.5 µs per op (exec side)

Erc20State initial_state() {
  return Erc20State(std::vector<Amount>(kAccounts, 1u << 20),
                    std::vector<std::vector<Amount>>(
                        kAccounts, std::vector<Amount>(kAccounts, 1)));
}

/// The conflict-parameterized op stream (bench_parallel_exec's model):
/// hot-set transfers with probability conflict_pct%, disjoint-pair
/// transfers otherwise.
std::vector<Erc20Ledger::BatchOp> make_stream(int conflict_pct) {
  Rng rng(1000 + static_cast<std::uint64_t>(conflict_pct));
  std::vector<Erc20Ledger::BatchOp> ops;
  ops.reserve(kStreamOps);
  for (std::size_t i = 0; i < kStreamOps; ++i) {
    if (rng.chance(static_cast<std::uint64_t>(conflict_pct), 100)) {
      const auto src = static_cast<ProcessId>(rng.below(kHotAccounts));
      const auto dst = static_cast<AccountId>(rng.below(kHotAccounts));
      ops.push_back({src, Erc20Op::transfer(dst, 1)});
    } else {
      const auto self = static_cast<ProcessId>(i % (kAccounts / 2));
      const auto dst = static_cast<AccountId>(self + kAccounts / 2);
      ops.push_back({self, Erc20Op::transfer(dst, 1)});
    }
  }
  return ops;
}

/// Chunks the stream into size-cut blocks (the deadline axis has no
/// meaning without a clock; the scenario lane covers it).
std::vector<Block<Erc20LedgerSpec>> chunk(
    const std::vector<Erc20Ledger::BatchOp>& ops, std::size_t batch_size) {
  std::vector<Block<Erc20LedgerSpec>> blocks;
  for (std::size_t at = 0; at < ops.size(); at += batch_size) {
    Block<Erc20LedgerSpec> b;
    const std::size_t end = std::min(at + batch_size, ops.size());
    b.ops.assign(ops.begin() + at, ops.begin() + end);
    blocks.push_back(std::move(b));
  }
  return blocks;
}

void BlockReplay_Grid(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const int conflict_pct = static_cast<int>(state.range(2));
  const auto blocks = chunk(make_stream(conflict_pct), batch_size);
  // Engine (ledger + worker pool) lives outside the timed loop; balance
  // drift across iterations is bounded exactly as in bench_parallel_exec.
  // The ~0.5 µs simulated validation per op is the parallelizable
  // payload a multi-core host spreads over the wave.
  ReplayEngine<Erc20LedgerSpec> engine(
      initial_state(), {.threads = threads}, /*num_shards=*/0,
      kValidationCost);
  for (auto _ : state) {
    for (const auto& b : blocks) {
      benchmark::DoNotOptimize(engine.apply(b));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kStreamOps));
  const double nblocks = static_cast<double>(engine.blocks_applied());
  state.counters["blocks"] = static_cast<double>(blocks.size());
  state.counters["waves_per_block"] =
      nblocks ? static_cast<double>(engine.waves_total()) / nblocks : 0.0;
  state.counters["parallelism"] =
      engine.waves_total()
          ? static_cast<double>(engine.ops_applied()) /
                static_cast<double>(engine.waves_total())
          : 0.0;
}

void BlockPipeline_Replicated(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.workload = Workload::kErc20BlockStorm;
  cfg.fault = state.range(1) == 0 ? FaultProfile::kNone
                                  : FaultProfile::kLossyDup;
  cfg.seed = 7;
  cfg.num_replicas = 4;
  cfg.intensity = 6;
  cfg.block_max_ops = static_cast<std::size_t>(state.range(0));
  ScenarioReport rep;
  for (auto _ : state) {
    rep = run_scenario(cfg);
    benchmark::DoNotOptimize(rep.history_digest);
  }
  if (!rep.ok()) {
    state.SkipWithError(("invariant violation: " + rep.summary()).c_str());
    return;
  }
  state.SetLabel(rep.workload + "/" + rep.fault);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rep.committed));
  state.counters["slots"] = static_cast<double>(rep.slots);
  state.counters["committed"] = static_cast<double>(rep.committed);
  state.counters["ops_per_slot"] =
      rep.slots ? static_cast<double>(rep.committed) /
                      static_cast<double>(rep.slots)
                : 0.0;
  state.counters["commits_per_ktime"] = rep.commits_per_ktime;
  state.counters["commit_p50"] = static_cast<double>(rep.latency.p50);
  state.counters["commit_p99"] = static_cast<double>(rep.latency.p99);
  state.counters["sim_time"] = static_cast<double>(rep.sim_time);
  tokensync_bench::export_net_counters(state, rep.net);
}

void replay_grid(benchmark::internal::Benchmark* b) {
  for (int batch : {8, 64, 512, 4096}) {
    for (int threads : {1, 2, 4, 8}) {
      for (int conflict : {0, 50, 100}) {
        b->Args({batch, threads, conflict});
      }
    }
  }
  b->ArgNames({"batch_size", "threads", "conflict_pct"});
  b->UseRealTime();
  b->MinTime(0.05);
}

void replicated_sweep(benchmark::internal::Benchmark* b) {
  for (int batch : {1, 4, 8, 32}) {
    for (int fault : {0, 1}) {
      b->Args({batch, fault});
    }
  }
  b->ArgNames({"batch_size", "fault"});
  b->MinTime(0.01);
}

BENCHMARK(BlockReplay_Grid)->Apply(replay_grid);
BENCHMARK(BlockPipeline_Replicated)->Apply(replicated_sweep);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_block_pipeline.json");
}
