// E18/E19 — bytes on the wire under compact relay and ERB batching
// (DESIGN.md §12).
//
// One lane: CompactRelay_Scenario — the relay-sensitive workloads over
// SimNet, workload × relay_mode × fault × erb_batch:
//
//   workload 0 — erc20_block_storm (the consensus lane: blocks of 8
//                propose as full payloads vs op-ID references; the
//                erb_batch axis is inert and pinned to 1);
//   workload 1 — mixed_sync_tiers (both lanes: the ERB fast lane cuts
//                same-origin batches of erb_batch ∈ {1, 4, 8}, the slow
//                lane flips full/compact with relay_mode);
//   workload 2 — erc20_fastlane_storm (pure ERB lane, zero consensus
//                slots: the clean bytes-vs-erb_batch curve over
//                {1, 2, 4, 8}; the relay axis is inert and pinned to
//                full).
//
// Reported per cell, all SIMULATED protocol metrics:
//
//   bytes_sent / bytes_delivered — the wire-size model of common/wire.h
//                (headers + payloads + client auth), the headline axis:
//                compact mode and fatter ERB batches must shrink it
//                while the committed history stays BYTE-IDENTICAL
//                (tests/compact_relay_test.cc pins that invariance);
//   proposal_bytes / bytes_per_slot — consensus-value bytes behind the
//                reference replica's committed slots (E18's >= 5x drop
//                at block size 8);
//   miss_recoveries — blocks/commands that needed the kGetOps
//                round-trip (non-zero only under compact + loss);
//   msgs_sent, commit_p50/p99, commits_per_ktime — the cost side:
//                recovery round-trips and batch cut waits show up here,
//                not in the history.
//
// Wall-clock time per iteration is the SIMULATION cost, not a protocol
// claim (same caveat as bench_simnet).  Alongside the console output
// the binary always writes BENCH_compact_relay.json, copied into
// bench/results/ on unfiltered runs (README.md "Reading the
// benchmarks").
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "bench_json_main.h"
#include "sched/scenario.h"

namespace {

using namespace tokensync;

void CompactRelay_Scenario(benchmark::State& state) {
  ScenarioConfig cfg;
  cfg.workload = state.range(0) == 0   ? Workload::kErc20BlockStorm
                 : state.range(0) == 1 ? Workload::kMixedSyncTiers
                                       : Workload::kErc20FastlaneStorm;
  cfg.relay_mode =
      state.range(1) == 0 ? RelayMode::kFull : RelayMode::kCompact;
  // Same fault-axis numbering as bench_simnet (all_fault_profiles()
  // order: none, lossy, lossy_dup, partition_heal, minority_crash).
  cfg.fault =
      all_fault_profiles()[static_cast<std::size_t>(state.range(2))];
  cfg.erb_batch = static_cast<std::size_t>(state.range(3));
  cfg.seed = 7;
  cfg.num_replicas = 4;
  cfg.intensity = 6;
  ScenarioReport rep;
  for (auto _ : state) {
    rep = run_scenario(cfg);
    benchmark::DoNotOptimize(rep.history_digest);
  }
  if (!rep.ok()) {
    state.SkipWithError(("invariant violation: " + rep.summary()).c_str());
    return;
  }
  state.SetLabel(rep.workload + "/" + rep.fault + "/" +
                 to_string(cfg.relay_mode));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rep.committed));
  state.counters["committed"] = static_cast<double>(rep.committed);
  state.counters["slots"] = static_cast<double>(rep.slots);
  state.counters["fast_lane_commits"] =
      static_cast<double>(rep.fast_lane_ops);
  state.counters["proposal_bytes"] =
      static_cast<double>(rep.proposal_bytes);
  state.counters["bytes_per_slot"] =
      rep.slots ? static_cast<double>(rep.proposal_bytes) /
                      static_cast<double>(rep.slots)
                : 0.0;
  state.counters["miss_recoveries"] =
      static_cast<double>(rep.miss_recoveries);
  state.counters["commit_p50"] = static_cast<double>(rep.latency.p50);
  state.counters["commit_p99"] = static_cast<double>(rep.latency.p99);
  state.counters["commits_per_ktime"] = rep.commits_per_ktime;
  state.counters["sim_time"] = static_cast<double>(rep.sim_time);
  tokensync_bench::export_net_counters(state, rep.net);
}

void relay_grid(benchmark::internal::Benchmark* b) {
  for (int relay : {0, 1}) {
    for (int fault = 0;
         fault < static_cast<int>(all_fault_profiles().size()); ++fault) {
      // Consensus lane: the fast lane is idle, erb_batch pinned to 1.
      b->Args({0, relay, fault, 1});
      // Hybrid tiers: sweep the fast-lane batch size.
      for (int batch : {1, 4, 8}) {
        b->Args({1, relay, fault, batch});
      }
    }
  }
  // Pure fast lane (zero slots): the clean E19 bytes-vs-batch curve.
  // The relay axis is inert here (nothing rides consensus) and pinned.
  for (int fault = 0;
       fault < static_cast<int>(all_fault_profiles().size()); ++fault) {
    for (int batch : {1, 2, 4, 8}) {
      b->Args({2, 0, fault, batch});
    }
  }
  b->ArgNames({"workload", "relay", "fault", "erb_batch"});
  b->MinTime(0.01);
}

BENCHMARK(CompactRelay_Scenario)->Apply(relay_grid);

}  // namespace

int main(int argc, char** argv) {
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_compact_relay.json");
}
