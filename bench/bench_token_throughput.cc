// E9a — the paper's scalability thesis on hardware: global total order
// (1 lock shard) vs per-account synchronization (per-account shards),
// swept across the ConcurrentLedger shard spectrum and token types.
//
// Expected shape: with threads touching mostly-disjoint accounts,
// throughput grows with shard count (and cores) while the single-shard
// ledger flattens; under full contention on ONE account all shard counts
// converge (per-account synchronization cannot beat the σ-group
// bottleneck — exactly the paper's point that coordination within σ(a)
// is irreducible).  The batched path amortizes lock acquisitions over
// commuting operations grouped per shard.
//
// Each operation carries a fixed simulated validation cost (~1 µs,
// standing in for signature verification / VM execution): what a ledger
// must do per transaction inside whichever lock protects the state.  The
// machine's core count bounds the attainable speedup.
//
// Alongside the console output the binary always writes
// BENCH_token_throughput.json (google-benchmark JSON: one entry per
// implementation × shard count × thread count, ops/sec in
// items_per_second) so the perf trajectory is machine-trackable across
// PRs.  --benchmark_out=... overrides the destination.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "atomic/ledger.h"
#include "atomic/ledger_specs.h"
#include "bench_json_main.h"
#include "common/rng.h"

namespace {

using namespace tokensync;

constexpr std::size_t kAccounts = 64;
constexpr unsigned kValidationCost = 1000;  // ~1 µs of work per op
constexpr int kIters = 2000;

Erc20State initial_erc20() {
  std::vector<Amount> balances(kAccounts, 1u << 20);
  return Erc20State(balances,
                    std::vector<std::vector<Amount>>(
                        kAccounts, std::vector<Amount>(kAccounts, 0)));
}

// Each thread owns a distinct account neighborhood: commuting ops.
void run_disjoint(Erc20Ledger& ledger, int tid, int iters) {
  Rng rng(100 + tid);
  const ProcessId self = static_cast<ProcessId>(tid % kAccounts);
  for (int i = 0; i < iters; ++i) {
    const AccountId dst =
        static_cast<AccountId>((self + 1 + rng.below(3)) % kAccounts);
    ledger.apply(self, Erc20Op::transfer(dst, 1));
  }
}

// Everyone hammers account 0 — the σ-group bottleneck.
void run_hotspot(Erc20Ledger& ledger, int tid, int iters) {
  Rng rng(200 + tid);
  for (int i = 0; i < iters; ++i) {
    ledger.apply(0, Erc20Op::transfer(
                        static_cast<AccountId>(1 + rng.below(3)), 0));
  }
}

template <bool Hotspot>
void Erc20Throughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    Erc20Ledger ledger(initial_erc20(), kValidationCost, shards);
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) {
      ws.emplace_back([&ledger, t] {
        if constexpr (Hotspot) {
          run_hotspot(ledger, t, kIters);
        } else {
          run_disjoint(ledger, t, kIters);
        }
      });
    }
    for (auto& w : ws) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kIters);
}

void Erc20_Disjoint(benchmark::State& s) { Erc20Throughput<false>(s); }
void Erc20_Hotspot(benchmark::State& s) { Erc20Throughput<true>(s); }

/// Batched path: the same disjoint workload submitted as per-thread
/// batches, letting the ledger group commuting ops per shard under one
/// lock acquisition.
void Erc20_DisjointBatched(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  constexpr int kBatch = 100;
  for (auto _ : state) {
    Erc20Ledger ledger(initial_erc20(), kValidationCost, shards);
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) {
      ws.emplace_back([&ledger, t] {
        Rng rng(300 + t);
        const ProcessId self = static_cast<ProcessId>(t % kAccounts);
        for (int i = 0; i < kIters / kBatch; ++i) {
          std::vector<Erc20Ledger::BatchOp> batch(kBatch);
          for (auto& b : batch) {
            b.caller = self;
            b.op = Erc20Op::transfer(
                static_cast<AccountId>((self + 1 + rng.below(3)) %
                                       kAccounts),
                1);
          }
          ledger.apply_batch(batch);
        }
      });
    }
    for (auto& w : ws) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads *
                          (kIters / kBatch) * kBatch);
}

/// ERC721: threads shuffle their own tokens between their own accounts
/// (disjoint σ-groups; the state-dependent footprint path).
void Erc721_Disjoint(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kTokensPerAccount = 4;
  std::vector<AccountId> owners;
  for (AccountId a = 0; a < kAccounts; ++a) {
    for (std::size_t t = 0; t < kTokensPerAccount; ++t) owners.push_back(a);
  }
  const Erc721State initial(kAccounts, owners);
  for (auto _ : state) {
    Erc721Ledger ledger(initial, kValidationCost, shards);
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) {
      ws.emplace_back([&ledger, t] {
        Rng rng(400 + t);
        AccountId self = static_cast<AccountId>(t % kAccounts);
        for (int i = 0; i < kIters; ++i) {
          const TokenId tok = static_cast<TokenId>(
              self * kTokensPerAccount + rng.below(kTokensPerAccount));
          const AccountId dst =
              static_cast<AccountId>(rng.below(kAccounts));
          // Owner moves its token out and back: σ = {self, dst}.
          ledger.apply(static_cast<ProcessId>(self),
                       Erc721Op::transfer_from(self, dst, tok));
          ledger.apply(static_cast<ProcessId>(dst),
                       Erc721Op::transfer_from(dst, self, tok));
        }
      });
    }
    for (auto& w : ws) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kIters * 2);
}

/// ERC777: operator sends between disjoint neighborhoods.
void Erc777_Disjoint(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  Erc777State initial(kAccounts, /*deployer=*/0, 0);
  for (AccountId a = 0; a < kAccounts; ++a) initial.set_balance(a, 1u << 20);
  for (auto _ : state) {
    Erc777Ledger ledger(initial, kValidationCost, shards);
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) {
      ws.emplace_back([&ledger, t] {
        Rng rng(500 + t);
        const ProcessId self = static_cast<ProcessId>(t % kAccounts);
        for (int i = 0; i < kIters; ++i) {
          const AccountId dst = static_cast<AccountId>(
              (self + 1 + rng.below(3)) % kAccounts);
          ledger.apply(self, Erc777Op::send(dst, 1));
        }
      });
    }
    for (auto& w : ws) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kIters);
}

void shard_sweep(benchmark::internal::Benchmark* b) {
  // threads × shards; shards = 1 is the MutexToken baseline, kAccounts
  // the per-account ShardedToken granularity.
  for (int threads : {1, 2, 4, 8}) {
    for (int shards : {1, 4, 16, static_cast<int>(kAccounts)}) {
      b->Args({threads, shards});
    }
  }
  b->ArgNames({"threads", "shards"});
  b->UseRealTime();
  b->MinTime(0.05);
}

BENCHMARK(Erc20_Disjoint)->Apply(shard_sweep);
BENCHMARK(Erc20_Hotspot)->Apply(shard_sweep);
BENCHMARK(Erc20_DisjointBatched)->Apply(shard_sweep);
BENCHMARK(Erc721_Disjoint)->Apply(shard_sweep);
BENCHMARK(Erc777_Disjoint)->Apply(shard_sweep);

}  // namespace

int main(int argc, char** argv) {
  // Default the JSON artifact on unless the caller redirects it.
  return tokensync_bench::run_benchmarks_with_default_json(
      argc, argv, "BENCH_token_throughput.json");
}
