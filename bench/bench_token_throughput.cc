// E9a — the paper's scalability thesis on hardware: global total order
// (MutexToken) vs per-account synchronization (ShardedToken).
//
// Expected shape: with threads touching mostly-disjoint accounts, the
// sharded token scales with cores while the global mutex flattens; under
// full contention on ONE account the two converge (per-account
// synchronization cannot beat the σ-group bottleneck — exactly the
// paper's point that coordination within σ(a) is irreducible).
//
// Each operation carries a fixed simulated validation cost (~1 µs,
// standing in for signature verification / VM execution): what a ledger
// must do per transaction inside whichever lock protects the state.  The
// machine's core count bounds the attainable speedup.
#include <benchmark/benchmark.h>

#include <thread>

#include "atomic/tokens.h"
#include "common/rng.h"

namespace {

using namespace tokensync;

constexpr std::size_t kAccounts = 64;
constexpr unsigned kValidationCost = 1000;  // ~1 µs of work per op

Erc20State initial_state() {
  std::vector<Amount> balances(kAccounts, 1u << 20);
  return Erc20State(balances,
                    std::vector<std::vector<Amount>>(
                        kAccounts, std::vector<Amount>(kAccounts, 0)));
}

template <typename Token>
void run_disjoint(Token& token, int tid, int iters) {
  // Each thread owns a distinct account neighborhood: commuting ops.
  Rng rng(100 + tid);
  const ProcessId self = static_cast<ProcessId>(tid % kAccounts);
  for (int i = 0; i < iters; ++i) {
    const AccountId dst =
        static_cast<AccountId>((self + 1 + rng.below(3)) % kAccounts);
    token.transfer(self, dst, 1);
  }
}

template <typename Token>
void run_hotspot(Token& token, int tid, int iters) {
  // Everyone hammers account 0 — the σ-group bottleneck.
  Rng rng(200 + tid);
  for (int i = 0; i < iters; ++i) {
    token.transfer(0, static_cast<AccountId>(1 + rng.below(3)), 0);
  }
}

template <typename Token, bool Hotspot>
void TokenThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kIters = 2000;
  for (auto _ : state) {
    Token token(initial_state(), kValidationCost);
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) {
      ws.emplace_back([&token, t] {
        if constexpr (Hotspot) {
          run_hotspot(token, t, kIters);
        } else {
          run_disjoint(token, t, kIters);
        }
      });
    }
    for (auto& w : ws) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kIters);
}

void GlobalOrder_Disjoint(benchmark::State& s) {
  TokenThroughput<MutexToken, false>(s);
}
void PerAccount_Disjoint(benchmark::State& s) {
  TokenThroughput<ShardedToken, false>(s);
}
void GlobalOrder_Hotspot(benchmark::State& s) {
  TokenThroughput<MutexToken, true>(s);
}
void PerAccount_Hotspot(benchmark::State& s) {
  TokenThroughput<ShardedToken, true>(s);
}

// Thread counts capped at the host's hardware concurrency: beyond it the
// measurement is pure oversubscription noise.  (EXPERIMENTS.md records
// the effective parallelism of the measurement machine.)
BENCHMARK(GlobalOrder_Disjoint)->DenseRange(1, 2)->UseRealTime()
    ->MinTime(0.2);
BENCHMARK(PerAccount_Disjoint)->DenseRange(1, 2)->UseRealTime()
    ->MinTime(0.2);
BENCHMARK(GlobalOrder_Hotspot)->DenseRange(1, 2)->UseRealTime()
    ->MinTime(0.2);
BENCHMARK(PerAccount_Hotspot)->DenseRange(1, 2)->UseRealTime()
    ->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
