// Quickstart: the paper's Example 1, executed against the ERC20 token
// object (Definition 3), plus the state-classification readout.
//
//   $ ./quickstart
//
// Alice deploys a token with supply 10, pays Bob, Bob approves Charlie,
// Charlie spends from Bob's account — every state q0..q4 printed and the
// synchronization class (Q_k / S_k) tracked as it changes.
#include <cstdio>

#include "core/planner.h"
#include "core/state_class.h"
#include "objects/erc20.h"

using namespace tokensync;

namespace {

void show(const char* label, const Erc20Token& token) {
  const auto& q = token.state();
  const std::size_t k = state_class(q);
  std::printf("%s: %s\n", label, q.to_string().c_str());
  std::printf("    class: q ∈ Q_%zu%s\n", k,
              is_synchronization_state(q, k) ? " (synchronization state)"
                                             : "");
}

}  // namespace

int main() {
  constexpr ProcessId kAlice = 0, kBob = 1, kCharlie = 2;

  std::printf("ERC20 token object — paper Example 1\n");
  std::printf("processes: Alice=p0, Bob=p1, Charlie=p2\n\n");

  // Alice deploys with totalSupply = 10.
  Erc20Token token(Erc20State(3, kAlice, 10));
  show("q0 (deploy, supply 10 to Alice)", token);

  // Alice -> transfer(a_B, 3).
  auto r1 = token.invoke(kAlice, Erc20Op::transfer(account_of(kBob), 3));
  std::printf("\nAlice: transfer(a_B, 3) -> %s\n", r1.ok ? "TRUE" : "FALSE");
  show("q1", token);

  // Bob -> approve(Charlie, 5).
  auto r2 = token.invoke(kBob, Erc20Op::approve(kCharlie, 5));
  std::printf("\nBob: approve(Charlie, 5) -> %s\n", r2.ok ? "TRUE" : "FALSE");
  show("q2", token);

  // Charlie -> transferFrom(a_B, a_C, 5): fails, balance only 3.
  auto r3 = token.invoke(
      kCharlie, Erc20Op::transfer_from(account_of(kBob),
                                       account_of(kCharlie), 5));
  std::printf("\nCharlie: transferFrom(a_B, a_C, 5) -> %s  "
              "(insufficient balance despite allowance)\n",
              r3.ok ? "TRUE" : "FALSE");
  show("q3 (= q2)", token);

  // Charlie -> transferFrom(a_B, a_A, 1): succeeds.
  auto r4 = token.invoke(
      kCharlie,
      Erc20Op::transfer_from(account_of(kBob), account_of(kAlice), 1));
  std::printf("\nCharlie: transferFrom(a_B, a_A, 1) -> %s\n",
              r4.ok ? "TRUE" : "FALSE");
  show("q4", token);

  // The conclusion's insight: the synchronization plan is readable from q.
  std::printf("\n--- synchronization plan for q4 ---\n%s",
              plan_synchronization(token.state()).to_string().c_str());
  return 0;
}
