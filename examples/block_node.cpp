// block pipeline demo — batched total-order replication with
// deterministic parallel replay, from the CLI (ISSUE 4).
//
// Runs the erc20_block_storm scenario twice under the chosen fault
// profile: once at batch size 1 (the ISSUE 2 one-op-per-slot baseline)
// and once at the requested --batch-size, printing the consensus-slot
// amortization batching buys (slots, messages, simulated commit
// latency/throughput).  Then re-runs the batched configuration with 1,
// 2 and 8 replay worker threads per replica and checks the committed
// histories are byte-identical — the pipeline's determinism contract,
// live.
//
//   $ ./block_node [seed] [fault] [--batch-size N]
//     fault ∈ none | lossy | lossy_dup | partition_heal | minority_crash
//
// Every run is a pure function of (seed, fault, batch size); the
// process exits nonzero if any audit or the determinism check fails, so
// the ctest smoke run enforces what the demo demonstrates.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sched/scenario.h"

using namespace tokensync;

namespace {

FaultProfile parse_fault(const char* s) {
  for (FaultProfile f : all_fault_profiles()) {
    if (std::strcmp(s, to_string(f)) == 0) return f;
  }
  std::fprintf(stderr, "unknown fault profile '%s'\n", s);
  std::exit(1);
}

bool g_all_ok = true;

ScenarioReport run_and_print(ScenarioConfig cfg) {
  const ScenarioReport rep = run_scenario(cfg);
  g_all_ok = g_all_ok && rep.ok();
  std::printf("  %s\n", rep.summary().c_str());
  std::printf("  slots=%zu ops=%zu ops/slot=%.2f msgs=%llu "
              "agreement=%s conservation=%s settled=%s digest=%016llx\n",
              rep.slots, rep.committed,
              rep.slots ? static_cast<double>(rep.committed) /
                              static_cast<double>(rep.slots)
                        : 0.0,
              (unsigned long long)rep.net.sent,
              rep.agreement ? "yes" : "NO", rep.conservation ? "yes" : "NO",
              rep.settled ? "yes" : "NO",
              (unsigned long long)rep.history_digest);
  for (const auto& v : rep.violations) {
    std::printf("  VIOLATION: %s\n", v.c_str());
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 11;
  FaultProfile fault = FaultProfile::kLossyDup;
  std::size_t batch_size = 8;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
      batch_size = std::strtoull(argv[++i], nullptr, 10);
      if (batch_size == 0) batch_size = 1;
    } else if (positional == 0) {
      seed = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else {
      fault = parse_fault(argv[i]);
    }
  }

  ScenarioConfig cfg;
  cfg.workload = Workload::kErc20BlockStorm;
  cfg.fault = fault;
  cfg.seed = seed;
  cfg.num_replicas = 4;
  cfg.intensity = 4;

  std::printf("== baseline: one op per consensus slot "
              "(batch-size 1, fault=%s, seed=%llu)\n",
              to_string(fault), (unsigned long long)seed);
  cfg.block_max_ops = 1;
  run_and_print(cfg);

  std::printf("\n== block pipeline: batch-size %zu "
              "(size cut at %zu ops, deadline cut every %llu time units)\n",
              batch_size, batch_size,
              (unsigned long long)cfg.block_deadline);
  cfg.block_max_ops = batch_size;
  const ScenarioReport batched = run_and_print(cfg);

  std::printf("\n== determinism across replay parallelism: same seed, "
              "replicas replaying with 1/2/8 worker threads\n");
  for (const std::size_t threads : {1, 2, 8}) {
    cfg.replay_threads = threads;
    const ScenarioReport rep = run_scenario(cfg);
    const bool same = rep.history == batched.history;
    g_all_ok = g_all_ok && rep.ok() && same;
    std::printf("  replay_threads=%zu digest=%016llx %s\n", threads,
                (unsigned long long)rep.history_digest,
                same ? "(byte-identical)" : "(DIVERGED!)");
  }

  std::printf("\nblocks commit atomically through one Paxos slot each; "
              "re-run with the same\narguments for identical histories, or "
              "vary --batch-size to trade consensus\nslots against block "
              "fill.\n");
  return g_all_ok ? 0 : 1;
}
