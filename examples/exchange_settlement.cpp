// Exchange settlement: a DEX-style operator holds allowances on many user
// accounts; the synchronization planner derives, from the token state
// alone, which accounts need group coordination and which settle
// consensus-free — the paper's "requirements readable from q" insight.
//
//   $ ./exchange_settlement [users] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "core/planner.h"
#include "objects/erc20.h"

using namespace tokensync;

int main(int argc, char** argv) {
  const std::size_t users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // Process layout: p0 = exchange operator, p1..p_users = traders.
  const std::size_t n = users + 1;
  Rng rng(seed);

  // Fund traders, then let a random subset approve the exchange operator
  // (and a few traders approve each other — OTC side deals).
  Erc20State q(n, /*deployer=*/0, /*supply=*/1000 * n);
  for (ProcessId t = 1; t < n; ++t) {
    auto [r, next] = Erc20Spec::apply(
        q, 0, Erc20Op::transfer(account_of(t), 500 + rng.below(500)));
    q = next;
  }
  std::size_t dex_clients = 0;
  for (ProcessId t = 1; t < n; ++t) {
    if (rng.chance(2, 3)) {  // 2/3 of traders use the DEX
      auto [r, next] = Erc20Spec::apply(
          q, t, Erc20Op::approve(/*operator=*/0, 100 + rng.below(200)));
      q = next;
      ++dex_clients;
    }
    if (rng.chance(1, 4)) {  // occasional OTC allowance to a peer
      const ProcessId peer = 1 + static_cast<ProcessId>(rng.below(users));
      auto [r, next] =
          Erc20Spec::apply(q, t, Erc20Op::approve(peer, 50));
      q = next;
    }
  }

  std::printf("exchange scenario: %zu traders, %zu of them DEX clients\n\n",
              users, dex_clients);
  const SyncPlan plan = plan_synchronization(q);
  std::printf("%s\n", plan.to_string().c_str());

  std::printf("interpretation:\n");
  std::printf("  * %zu accounts settle consensus-free (broadcast is "
              "enough — CN = 1, as for plain asset transfer);\n",
              plan.accounts.size() - plan.coordinated_accounts);
  std::printf("  * %zu accounts need agreement only within their spender "
              "group (owner + operator/peers), NOT global consensus;\n",
              plan.coordinated_accounts);
  std::printf("  * the maximal group size k = %zu bounds the strongest "
              "consensus object the whole contract can implement "
              "(Theorems 2 and 3).\n",
              plan.level);
  return 0;
}
