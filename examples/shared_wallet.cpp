// Shared wallet: a 3-party spending committee built from plain ERC20
// approvals, deciding which payment executes via Algorithm 1's consensus.
//
//   $ ./shared_wallet [seed]
//
// A treasury account approves two officers; treasury balance and the two
// allowances satisfy the U predicate (eq. 13), so the state is in S_3 and
// consensus among the 3 spenders is possible (Theorem 2).  Each party
// proposes a different payment id; Algorithm 1 runs under a random
// schedule, and the race's unique winner determines which payment every
// party executes — no external coordinator.
#include <cstdio>
#include <cstdlib>

#include "core/algo1.h"
#include "core/state_class.h"
#include "sched/scheduler.h"

using namespace tokensync;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2024;

  std::printf("Shared wallet: owner p0 (treasurer) + officers p1, p2\n");

  // Treasury: account 0 holds 100; officers approved 60 each (60+60>100,
  // so U holds and q ∈ S_3).
  Erc20State q(4, /*deployer=*/0, /*supply=*/100);
  q.set_allowance(0, 1, 60);
  q.set_allowance(0, 2, 60);
  std::printf("state: %s\n", q.to_string().c_str());
  std::printf("class: Q_%zu, synchronization state: %s\n\n",
              state_class(q),
              is_synchronization_state(q, 3) ? "yes (Theorem 2 applies)"
                                             : "no");

  // Proposals: payment ids the three parties want executed.
  const std::vector<Amount> payments{9001, 9002, 9003};
  std::printf("p0 proposes payment #%llu (payroll)\n",
              (unsigned long long)payments[0]);
  std::printf("p1 proposes payment #%llu (vendor invoice)\n",
              (unsigned long long)payments[1]);
  std::printf("p2 proposes payment #%llu (refund batch)\n\n",
              (unsigned long long)payments[2]);

  Algo1Config cfg(q, /*race_account=*/0, /*dest_account=*/3, {0, 1, 2},
                  payments);
  Rng rng(seed);
  auto result = run_random(cfg, rng, {});

  for (ProcessId p = 0; p < 3; ++p) {
    std::printf("p%u decided payment #%llu after %zu steps\n", p,
                (unsigned long long)result.decisions[p]->value,
                result.steps_taken[p]);
  }

  const auto verdict =
      check_consensus_run(result.decisions, payments, {});
  std::printf("\nconsensus verdict: agreement=%s validity=%s "
              "termination=%s\n",
              verdict.agreement ? "ok" : "VIOLATED",
              verdict.validity ? "ok" : "VIOLATED",
              verdict.termination ? "ok" : "VIOLATED");

  std::printf("post-race token state: %s\n",
              cfg.token().to_string().c_str());
  std::printf("(a winning officer's allowance drops to 0; if the owner "
              "won, the drained\n balance blocks both officers — either "
              "way every party reads the same winner)\n");
  return 0;
}
