// dyntoken demo — a real multi-replica run over the fault-injecting
// SimNet, via the ReplicaNode/scenario runtime (ISSUE 2).
//
// Three runs, one network story:
//   1. dyntoken issuer reconfiguration (per-account dynamic consensus
//      groups, the paper's Sec. 7 system) under a chosen fault profile;
//   2. the same fault profile against the total-order baseline — an ERC20
//      replicated through ReplicaNode over the Paxos-backed atomic
//      broadcast ("all transactions through consensus");
//   3. the replicated k-AT token race: Algorithm 1's sticky race decided
//      end-to-end across replicas exchanging messages.
//
// Every run is a pure function of (workload, fault, seed): re-run with
// the same arguments and the committed histories are byte-identical.
//
//   $ ./dyntoken_node [seed] [fault]
//     fault ∈ none | lossy | lossy_dup | partition_heal | minority_crash
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/kat_consensus.h"
#include "sched/scenario.h"

using namespace tokensync;

namespace {

FaultProfile parse_fault(const char* s) {
  for (FaultProfile f : all_fault_profiles()) {
    if (std::strcmp(s, to_string(f)) == 0) return f;
  }
  std::fprintf(stderr, "unknown fault profile '%s'\n", s);
  std::exit(1);
}

bool g_all_ok = true;

void print_report(const ScenarioReport& rep, bool with_history) {
  g_all_ok = g_all_ok && rep.ok();
  std::printf("  %s\n", rep.summary().c_str());
  std::printf("  net: %llu sent, %llu delivered, %llu dropped, %llu dup\n",
              (unsigned long long)rep.net.sent,
              (unsigned long long)rep.net.delivered,
              (unsigned long long)rep.net.dropped,
              (unsigned long long)rep.net.duplicated);
  std::printf("  agreement=%s conservation=%s settled=%s digest=%016llx\n",
              rep.agreement ? "yes" : "NO", rep.conservation ? "yes" : "NO",
              rep.settled ? "yes" : "NO",
              (unsigned long long)rep.history_digest);
  for (const auto& v : rep.violations) std::printf("  VIOLATION: %s\n",
                                                   v.c_str());
  if (with_history) {
    std::printf("  committed history (identical on every correct "
                "replica):\n");
    std::size_t start = 0;
    const std::string& h = rep.history;
    while (start < h.size()) {
      std::size_t nl = h.find('\n', start);
      if (nl == std::string::npos) nl = h.size();
      std::printf("    | %.*s\n", static_cast<int>(nl - start),
                  h.c_str() + start);
      start = nl + 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  const FaultProfile fault =
      argc > 2 ? parse_fault(argv[2]) : FaultProfile::kLossyLinks;

  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_replicas = 4;
  cfg.intensity = 3;
  cfg.fault = fault;

  std::printf("== dyntoken: per-account dynamic consensus groups "
              "(4 replicas, fault=%s, seed=%llu)\n",
              to_string(fault), (unsigned long long)seed);
  std::printf("   The issuer re-approves spenders mid-stream; each epoch's "
              "spends are decided\n   only by that account's spender group "
              "(singleton groups are consensus-free).\n");
  cfg.workload = Workload::kDynTokenReconfig;
  print_report(run_scenario(cfg), /*with_history=*/true);

  std::printf("\n== total-order baseline: ERC20 storm through one Paxos "
              "log (same fault, same seed)\n");
  cfg.workload = Workload::kErc20TransferStorm;
  print_report(run_scenario(cfg), /*with_history=*/false);

  std::printf("\n== replicated k-AT token race: Algorithm 1 end-to-end "
              "across the network\n");
  const auto race =
      run_token_race_scenario<KatRaceSpec>(4, fault, seed, "race_kat");
  print_report(race, /*with_history=*/true);

  std::printf("\nre-run with the same arguments for byte-identical "
              "histories; change the seed\nor fault profile to explore "
              "another schedule.\n");
  // Nonzero exit on any invariant violation, so the ctest smoke run
  // enforces what the demo demonstrates.
  return g_all_ok ? 0 : 1;
}
