// dyntoken demo: an ERC20 token running over a simulated network with
// per-account dynamic consensus groups (the paper's Sec. 7 system),
// including the Algorithm-1-style spender race settled by group Paxos.
//
//   $ ./dyntoken_node [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "dyntoken/dyntoken.h"

using namespace tokensync;

namespace {

DynOp mk_transfer(AccountId dst, Amount v) {
  DynOp op;
  op.kind = DynOp::Kind::kTransfer;
  op.dst = dst;
  op.amount = v;
  return op;
}

DynOp mk_transfer_from(AccountId src, AccountId dst, Amount v) {
  DynOp op;
  op.kind = DynOp::Kind::kTransferFrom;
  op.src = src;
  op.dst = dst;
  op.amount = v;
  return op;
}

DynOp mk_approve(ProcessId spender, Amount v) {
  DynOp op;
  op.kind = DynOp::Kind::kApprove;
  op.spender = spender;
  op.amount = v;
  return op;
}

void print_groups(const std::vector<std::unique_ptr<DynTokenNode>>& nodes) {
  for (AccountId a = 0; a < nodes.size(); ++a) {
    const auto g = nodes[0]->current_group(a);
    std::printf("  account a%u decided by {", a);
    for (std::size_t i = 0; i < g.size(); ++i) {
      std::printf("%sp%u", i ? ", " : "", g[i]);
    }
    std::printf("}%s\n", g.size() == 1 ? " (consensus-free fast path)" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  const std::size_t n = 4;

  DynTokenNode::Net net(n, NetConfig{.seed = seed, .min_delay = 1,
                                     .max_delay = 15});
  std::vector<std::unique_ptr<DynTokenNode>> nodes;
  for (ProcessId p = 0; p < n; ++p) {
    nodes.push_back(
        std::make_unique<DynTokenNode>(net, p, std::vector<Amount>{
                                                   20, 20, 20, 20}));
  }

  std::printf("dyntoken: 4 replicas, 4 accounts, 20 tokens each\n\n");
  std::printf("initial groups (everything consensus-free):\n");
  print_groups(nodes);

  // Plain payments ride the fast path.
  nodes[0]->submit(mk_transfer(1, 5));
  nodes[3]->submit(mk_transfer(2, 7));
  net.run();

  // p1 approves two co-spenders — its account now needs group consensus.
  nodes[1]->submit(mk_approve(2, 20));
  nodes[1]->submit(mk_approve(3, 20));
  net.run();
  std::printf("\nafter p1 approves p2 and p3 (balance 25, allowances "
              "20/20 — U holds):\n");
  print_groups(nodes);

  // The race: both spenders try to drain the same account.
  nodes[2]->submit(mk_transfer_from(1, 2, 20));
  nodes[3]->submit(mk_transfer_from(1, 3, 20));
  net.run(8000000);

  std::printf("\nafter the spender race (exactly one wins, group Paxos "
              "ordered the slots):\n");
  for (ProcessId p = 0; p < n; ++p) {
    std::printf("  replica %u balances: [", p);
    for (AccountId a = 0; a < n; ++a) {
      std::printf("%s%llu", a ? ", " : "",
                  (unsigned long long)nodes[p]->balance(a));
    }
    std::printf("]  (supply %llu, aborted %llu, pending movements %llu)\n",
                (unsigned long long)nodes[p]->total_supply(),
                (unsigned long long)nodes[p]->aborted_ops(),
                (unsigned long long)nodes[p]->parked_movements());
  }
  std::printf("\ngroups now:\n");
  print_groups(nodes);
  std::printf("\nnetwork: %llu msgs sent, %llu delivered\n",
              (unsigned long long)net.stats().sent,
              (unsigned long long)net.stats().delivered);
  return 0;
}
